(** Randomised multi-group stack workload over the sharded driver — the
    subject of the cross-shard differential oracle.

    Each {e group} owns a full private pipeline: a {!Ldlp_core.Msg.pool}
    and an LDLP {!Ldlp_core.Sched} over a randomly drawn stack of layer
    behaviours.  Groups seed themselves with an initial burst; every
    delivered message whose TTL is positive is re-emitted through the
    {!Handoff} to the next group, so traffic keeps crossing shard
    boundaries until the TTLs drain.

    Everything observable — per-group delivered-stream digests, the
    emitted wire multiset, the conservation ledger, pool leak counts —
    is a pure function of [(spec, shards … any)].  {!run} with different
    shard counts must produce identical {!report}s (modulo
    [r_stats]); the oracle in [lib/check] and the QCheck suite both pin
    exactly that. *)

type behaviour = Pass | Consume_every of int | Reply_every of int

type spec = {
  sp_groups : int;
  sp_layers : behaviour list array;  (** Per-group stack, bottom first. *)
  sp_policy : Ldlp_core.Batch.policy;
  sp_init : (int * int) list array;
      (** Per-group initial burst, [(tag, ttl)] in injection order. *)
  sp_seed : int;  (** The seed that drew this spec (for reporting). *)
  sp_crash : (int * int * int) list;
      (** Crash windows [(group, down_round, up_round)]: the group is
          dead for rounds [down <= r < up].  While dead it processes
          nothing and every handoff delivery addressed to it is dropped
          and ledgered in [gr_crashed]; siblings on the same shard are
          untouched.  Because the BSP loop fully drains every pipeline
          each round, a group carries no volatile state between rounds —
          so deadness keyed by the (placement-invariant) round number is
          exactly a crash that wipes the in-flight work addressed to it,
          and reports stay identical at any shard count.  Windows must
          start at round >= 1 (seeding runs in round 0) and be disjoint
          per group. *)
}

val validate_crash : spec -> unit
(** @raise Invalid_argument on out-of-range groups, windows starting
    before round 1, empty or overlapping windows.  Run by {!run}. *)

val dead_at : spec -> group:int -> round:int -> bool

val random_spec : ?groups:int -> ?crash:bool -> seed:int -> unit -> spec
(** Deterministic in [seed].  [groups] defaults to a seed-drawn value in
    2–6.  [crash] (default [false]) additionally draws crash windows for
    roughly a third of the groups; the crash draw happens after every
    legacy field, so [(seed, groups)] produce byte-identical crash-free
    specs whether or not the flag exists. *)

val pp_spec : Format.formatter -> spec -> unit

type group_report = {
  gr_group : int;
  gr_digest : string list;
      (** Delivered stream, in delivery order — the byte-replayable
          output of the group's pipeline. *)
  gr_emits : (int * int * int) list;
      (** Handoff emissions [(dst_group, tag, ttl)] in emission order
          (per-group order is placement-invariant). *)
  gr_injected : int;
  gr_delivered : int;
  gr_consumed : int;
  gr_sent_down : int;
  gr_pool_outstanding : int;  (** Must be 0 — per-shard leak audit. *)
  gr_handoff_in : int;  (** Handoff deliveries accepted while alive. *)
  gr_crashed : int;  (** Handoff deliveries dropped by a crash window. *)
}

type report = {
  r_groups : group_report array;  (** Group-indexed, all groups. *)
  r_stats : Shard.run_stats;
}

val run :
  ?policy:Shard.Policy.t ->
  ?shard_seed:int ->
  ?capacity:int ->
  shards:int ->
  spec ->
  report
(** Execute the workload on [shards] domains ([1] = inline).
    [shard_seed]/[capacity] vary only the handoff's internal drain
    rotation and ring bound — the report must not change with them. *)

val wire_multiset : report -> (int * int * int * int) list
(** Sorted multiset of [(src_group, dst_group, tag, ttl)] over every
    handoff emission. *)

val ledger_ok : report -> bool
(** Conservation per group: injected = delivered + consumed, emissions
    equal deliveries with positive TTL, no pooled message leaked, and
    every emission addressed to a group was accepted by it or ledgered
    against its crash window ([addressed = handoff_in + crashed]). *)

val crashed_total : report -> int
(** Handoff deliveries lost to crash windows, summed over groups. *)

val totals : report -> int * int * int
(** [(injected, delivered, consumed)] summed over groups. *)

val equal_reports : report -> report -> bool
(** Placement-invariant equality: digests, emits and ledgers per group
    (ignores [r_stats], which legitimately varies with shard count). *)

val diff_reports : report -> report -> string option
(** [None] when {!equal_reports}; otherwise a human-readable first
    difference, for oracle output. *)
