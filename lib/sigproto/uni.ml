type event =
  | Link_up
  | Link_down of string
  | Call_offered of int * Ie.t list
  | Call_connected of int
  | Call_released of int
  | Call_failed of int * string

type outcome = { to_wire : bytes list; events : event list }

let empty = { to_wire = []; events = [] }

let ( ++ ) a b = { to_wire = a.to_wire @ b.to_wire; events = a.events @ b.events }

type timer = T303_running of int (* retransmissions so far *) | T308_running of int

type call = {
  mutable fsm : Fsm.state;
  mutable timer : (timer * float) option;  (* kind, deadline *)
  mutable last_setup_ies : Ie.t list;
  from_originator : bool;
}

module Flowtable = Ldlp_flowtable.Flowtable

type t = {
  sscop : Sscop_conn.t;
  t303 : float;
  t308 : float;
  calls : (int, call) Flowtable.t;
  mutable ready : bool;
}

let create ?sscop ?(t303 = 4.0) ?(t308 = 30.0) () =
  {
    sscop = Sscop_conn.create ?config:sscop ();
    t303;
    t308;
    (* [buckets] matches the Hashtbl.create 16 this map replaced: the
       backing store's fold order — which drives tick/deadline event
       ordering in the mesh storms — is preserved byte for byte. *)
    calls = Flowtable.create ~buckets:16 ~name:"uni-calls" ();
    ready = false;
  }

let link_ready t = t.ready

let active_calls t = Flowtable.length t.calls

let call_state t ~call_ref =
  Option.map (fun c -> c.fsm) (Flowtable.lookup t.calls call_ref)

let of_sscop (o : Sscop_conn.outcome) =
  { to_wire = o.Sscop_conn.to_send; events = [] }

(* Send one Q.93B message through the assured connection. *)
let ship t ~now ~call_ref ~from_originator typ ies =
  let wire = Sigmsg.encode (Sigmsg.v ~from_originator ~call_ref typ ies) in
  match Sscop_conn.send t.sscop ~now wire with
  | Ok o -> of_sscop o
  | Error `Not_ready -> empty

let link_up t ~now = of_sscop (Sscop_conn.begin_connection t.sscop ~now)

let fresh_call ~from_originator =
  { fsm = Fsm.Null; timer = None; last_setup_ies = []; from_originator }

let step_call t ~now call_ref (call : call) ev =
  match Fsm.step call.fsm ev with
  | Fsm.Protocol_error e ->
    (* Answer with STATUS per Q.93B and surface the error; a call that
       never left Null holds no state worth keeping. *)
    if call.fsm = Fsm.Null then Flowtable.remove t.calls call_ref;
    ship t ~now ~call_ref ~from_originator:(not call.from_originator)
      Sigmsg.Status []
    ++ { empty with events = [ Call_failed (call_ref, e) ] }
  | Fsm.Ok_next (state', actions) ->
    call.fsm <- state';
    let out =
      List.fold_left
        (fun acc action ->
          match action with
          | Fsm.Send typ ->
            let ies =
              if typ = Sigmsg.Setup then call.last_setup_ies else []
            in
            acc
            ++ ship t ~now ~call_ref ~from_originator:call.from_originator typ
                 ies
          | Fsm.Notify_setup ->
            acc
            ++ { empty with events = [ Call_offered (call_ref, call.last_setup_ies) ] }
          | Fsm.Notify_connected ->
            call.timer <- None;
            acc ++ { empty with events = [ Call_connected call_ref ] }
          | Fsm.Notify_released ->
            call.timer <- None;
            acc ++ { empty with events = [ Call_released call_ref ] })
        empty actions
    in
    if Fsm.is_terminal call.fsm then Flowtable.remove t.calls call_ref;
    out

let originate t ~now ~call_ref ies =
  if not t.ready then Error `Link_down
  else if Flowtable.mem t.calls call_ref then Error `Busy_ref
  else begin
    let call = fresh_call ~from_originator:true in
    call.last_setup_ies <- ies;
    Flowtable.insert t.calls call_ref call;
    let out = step_call t ~now call_ref call Fsm.Api_setup in
    call.timer <- Some (T303_running 0, now +. t.t303);
    Ok out
  end

let abort t ~call_ref =
  let existed = Flowtable.mem t.calls call_ref in
  Flowtable.remove t.calls call_ref;
  existed

let accept t ~now ~call_ref =
  match Flowtable.lookup t.calls call_ref with
  | None -> Error `No_call
  | Some call -> Ok (step_call t ~now call_ref call Fsm.Api_accept)

let hangup t ~now ~call_ref =
  match Flowtable.lookup t.calls call_ref with
  | None -> Error `No_call
  | Some call ->
    let out = step_call t ~now call_ref call Fsm.Api_release in
    if Flowtable.mem t.calls call_ref then
      call.timer <- Some (T308_running 0, now +. t.t308);
    Ok out

let on_signalling t ~now wire =
  match Sigmsg.decode wire with
  | Error _ -> empty
  | Ok m ->
    let call_ref = m.Sigmsg.call_ref in
    let call =
      match Flowtable.lookup t.calls call_ref with
      | Some c -> c
      | None ->
        let c = fresh_call ~from_originator:false in
        c.last_setup_ies <- m.Sigmsg.ies;
        Flowtable.insert t.calls call_ref c;
        c
    in
    if m.Sigmsg.typ = Sigmsg.Setup then call.last_setup_ies <- m.Sigmsg.ies;
    (* Any response to SETUP / RELEASE stops the supervision timer. *)
    (match (call.timer, m.Sigmsg.typ) with
    | Some (T303_running _, _), (Sigmsg.Call_proceeding | Sigmsg.Connect) ->
      call.timer <- None
    | Some (T308_running _, _), Sigmsg.Release_complete -> call.timer <- None
    | _ -> ());
    step_call t ~now call_ref call (Fsm.Recv m.Sigmsg.typ)

let on_wire t ~now frame =
  let o = Sscop_conn.on_receive t.sscop ~now frame in
  let base = of_sscop { o with Sscop_conn.deliveries = [] } in
  let link_events =
    List.filter_map
      (function
        | Sscop_conn.Connected ->
          t.ready <- true;
          Some Link_up
        | Sscop_conn.Released ->
          t.ready <- false;
          Some (Link_down "peer released")
        | Sscop_conn.Reset reason ->
          t.ready <- false;
          Some (Link_down reason))
      o.Sscop_conn.events
  in
  List.fold_left
    (fun acc wire -> acc ++ on_signalling t ~now wire)
    (base ++ { empty with events = link_events })
    o.Sscop_conn.deliveries

let call_deadlines t =
  Flowtable.fold
    (fun call_ref call acc ->
      match call.timer with
      | Some (_, d) -> (call_ref, call, d) :: acc
      | None -> acc)
    t.calls []

let next_deadline t =
  let timers =
    Option.to_list (Sscop_conn.next_deadline t.sscop)
    @ List.map (fun (_, _, d) -> d) (call_deadlines t)
  in
  match timers with [] -> None | ds -> Some (List.fold_left Float.min infinity ds)

let tick t ~now =
  (* SSCOP timers first. *)
  let o = Sscop_conn.tick t.sscop ~now in
  let link_events =
    List.filter_map
      (function
        | Sscop_conn.Reset reason ->
          t.ready <- false;
          Some (Link_down reason)
        | Sscop_conn.Connected ->
          t.ready <- true;
          Some Link_up
        | Sscop_conn.Released ->
          t.ready <- false;
          Some (Link_down "released"))
      o.Sscop_conn.events
  in
  let base = of_sscop o ++ { empty with events = link_events } in
  (* Q.93B supervision timers. *)
  List.fold_left
    (fun acc (call_ref, call, deadline) ->
      if now < deadline then acc
      else begin
        match call.timer with
        | Some (T303_running n, _) when n = 0 ->
          (* First expiry: retransmit SETUP, re-arm once. *)
          call.timer <- Some (T303_running 1, now +. t.t303);
          acc
          ++ ship t ~now ~call_ref ~from_originator:true Sigmsg.Setup
               call.last_setup_ies
        | Some (T303_running _, _) ->
          Flowtable.remove t.calls call_ref;
          acc ++ { empty with events = [ Call_failed (call_ref, "T303 expired") ] }
        | Some (T308_running n, _) when n = 0 ->
          call.timer <- Some (T308_running 1, now +. t.t308);
          acc ++ ship t ~now ~call_ref ~from_originator:call.from_originator Sigmsg.Release []
        | Some (T308_running _, _) ->
          Flowtable.remove t.calls call_ref;
          acc ++ { empty with events = [ Call_failed (call_ref, "T308 expired") ] }
        | None -> acc
      end)
    base (call_deadlines t)
