(** A user-network-interface signalling endpoint: Q.93B call control over
    the assured-mode SSCOP connection — the complete per-link stack of the
    paper's target environment (the ATM SAAL), as one driveable machine.

    Owns the SSCOP connection (established with {!link_up}) and a table of
    call half-FSMs, plus the two classic Q.93B supervision timers:

    - {b T303}: SETUP sent; if no response arrives, SETUP is retransmitted
      once, then the call is abandoned;
    - {b T308}: RELEASE sent; retransmitted once, then the call is
      considered dead and cleared locally.

    Like {!Sscop_conn}, the machine is clocked by the caller and returns
    the frames to transmit instead of performing IO. *)

type t

type event =
  | Link_up
  | Link_down of string
  | Call_offered of int * Ie.t list  (** Incoming SETUP: call ref, IEs. *)
  | Call_connected of int
  | Call_released of int
  | Call_failed of int * string  (** Timer expiry or protocol error. *)

type outcome = {
  to_wire : bytes list;  (** SSCOP frames for the link. *)
  events : event list;
}

val create : ?sscop:Sscop_conn.config -> ?t303:float -> ?t308:float -> unit -> t
(** Defaults: T303 = 4 s, T308 = 30 s (Q.93B's values). *)

val link_up : t -> now:float -> outcome
(** Originate the SSCOP connection.  Calls can be placed once {!Link_up}
    has been reported. *)

val link_ready : t -> bool

val originate : t -> now:float -> call_ref:int -> Ie.t list -> (outcome, [ `Link_down | `Busy_ref ]) result
(** Place a call: sends SETUP (assured), arms T303. *)

val abort : t -> call_ref:int -> bool
(** Drop all local state for a call without signalling the peer: no
    RELEASE, no events, supervision timer disarmed.  For a retry engine
    abandoning an attempt it has already given up on (the peer's
    half-open state, if any, dies with its own timers).  Returns whether
    the call existed. *)

val accept : t -> now:float -> call_ref:int -> (outcome, [ `No_call ]) result
(** Answer a call previously reported by {!Call_offered}. *)

val hangup : t -> now:float -> call_ref:int -> (outcome, [ `No_call ]) result
(** Clear a call: sends RELEASE, arms T308. *)

val on_wire : t -> now:float -> bytes -> outcome
(** Process one SSCOP frame from the link. *)

val tick : t -> now:float -> outcome
(** Fire due timers (SSCOP polls/retransmissions, T303, T308). *)

val next_deadline : t -> float option

val call_state : t -> call_ref:int -> Fsm.state option

val active_calls : t -> int
