module Plan = Ldlp_fault.Plan
module Impair = Ldlp_fault.Impair
module Rng = Ldlp_sim.Rng
module Engine = Ldlp_sim.Engine
module Netsim = Ldlp_netsim.Netsim
module Nic = Ldlp_nic.Nic
module Mbuf = Ldlp_buf.Mbuf
module Pool = Ldlp_buf.Pool
module Host = Ldlp_tcpmini.Host
module Pcb = Ldlp_tcpmini.Pcb
module Sockbuf = Ldlp_tcpmini.Sockbuf
module Core = Ldlp_core

type scenario = {
  id : int;
  seed : int;
  plan : Plan.t;
  chunks : int;
  chunk_bytes : int;
  intake_limit : int option;
  crash : (float * float) list;
}

let acceptance_plan =
  Plan.v ~drop:0.05 ~dup:0.02 ~corrupt:0.001 ~reorder:0.1 ~reorder_window:4 ()

let scenarios ~seed ~count =
  let rng = Rng.create ~seed in
  (* Crash episodes come from a separate stream so adding them did not
     reshuffle the fault plans the soak table already pins. *)
  let crng = Rng.create ~seed:(seed lxor 0xdead) in
  let rec go id acc =
    if id >= count then List.rev acc
    else
      let base =
        { id; seed = seed + (id * 7919); plan = Plan.none; chunks = 32;
          chunk_bytes = 64; intake_limit = None; crash = [] }
      in
      let sc =
        if id = 0 then base
        else if id = 1 then { base with plan = acceptance_plan }
        else begin
          (* Draws happen in a fixed order so the matrix is a pure
             function of (seed, count); values are rounded so the
             rendered table stays legible. *)
          let round q v = Float.round (v /. q) *. q in
          let drop = round 1e-3 (Rng.float rng 0.08) in
          let dup = round 1e-3 (Rng.float rng 0.04) in
          let corrupt = round 1e-4 (Rng.float rng 0.002) in
          let reorder = round 1e-3 (Rng.float rng 0.15) in
          let reorder_window = 2 + Rng.int rng 5 in
          let jitter = round 1e-5 (Rng.float rng 2e-4) in
          let down =
            if Rng.bool rng 0.25 then begin
              let start = round 1e-2 (0.2 +. Rng.float rng 0.6) in
              [ (start, start +. round 1e-2 (0.05 +. Rng.float rng 0.1)) ]
            end
            else []
          in
          let intake_limit =
            if Rng.bool rng 0.3 then Some (6 + Rng.int rng 20) else None
          in
          let plan =
            Plan.v ~drop ~dup ~corrupt ~reorder ~reorder_window ~jitter ~down ()
          in
          let crash =
            let round q v = Float.round (v /. q) *. q in
            if Rng.bool crng 0.3 then begin
              let start = round 1e-2 (0.15 +. Rng.float crng 0.5) in
              [ (start, start +. round 1e-2 (0.05 +. Rng.float crng 0.1)) ]
            end
            else begin
              (* Keep the stream in lockstep whether or not this
                 scenario crashes. *)
              ignore (Rng.float crng 1.0);
              ignore (Rng.float crng 1.0);
              []
            end
          in
          { base with plan; intake_limit; crash }
        end
      in
      go (id + 1) (sc :: acc)
  in
  go 0 []

type outcome = {
  completed : bool;
  integrity : bool;
  leak_free : bool;
  retransmits : int;
  shed : int;
  echoed_bytes : int;
  completion : float;
  dropped : int;
  duplicated : int;
  corrupted : int;
  reordered : int;
}

let outcome_ok sc o =
  o.completed && o.integrity && o.leak_free
  && ((not (Plan.is_none sc.plan && sc.crash = [])) || o.retransmits = 0)

type report = {
  scenario : scenario;
  conventional : outcome;
  ldlp : outcome;
  equivalent : bool;
}

let report_ok r =
  outcome_ok r.scenario r.conventional
  && outcome_ok r.scenario r.ldlp
  && r.equivalent

(* ---------- payloads ---------- *)

(* Chunk [i]: index stamp, seeded noise, trailing additive checksum.  Any
   mis-sequenced, duplicated or corrupted delivery breaks the
   whole-stream comparison in an attributable way. *)
let payloads sc =
  if sc.chunk_bytes < 4 then invalid_arg "Soak: chunk_bytes < 4";
  let rng = Rng.create ~seed:(sc.seed lxor 0x5eed) in
  let chunk i =
    let b = Bytes.create sc.chunk_bytes in
    Bytes.set b 0 (Char.chr (i land 0xff));
    Bytes.set b 1 (Char.chr ((i lsr 8) land 0xff));
    let sum = ref 0 in
    for j = 2 to sc.chunk_bytes - 2 do
      let c = Rng.int rng 256 in
      Bytes.set b j (Char.chr c);
      sum := !sum + c
    done;
    Bytes.set b (sc.chunk_bytes - 1) (Char.chr (!sum land 0xff));
    b
  in
  let a = Array.make sc.chunks Bytes.empty in
  for i = 0 to sc.chunks - 1 do
    a.(i) <- chunk i
  done;
  a

(* Flip one random bit somewhere in the frame.  TCP's ones'-complement
   checksum catches any single-bit flip in the segment; flips landing in
   the Ethernet/IP headers exercise the parser-hardening paths
   (mismatched MAC, wrong protocol, bad destination) instead. *)
let corruptor ~seed =
  let rng = Rng.create ~seed in
  fun m ->
    let len = Mbuf.length m in
    if len > 0 then begin
      let i = Rng.int rng len in
      let bit = Rng.int rng 8 in
      let b = Bytes.make 1 (Char.chr (Mbuf.get_byte m i lxor (1 lsl bit))) in
      Mbuf.copy_into m ~pos:i b ~src_off:0 ~len:1
    end;
    m

(* ---------- one echo exchange ---------- *)

let server_port = 7

let client_port = 40007

let client_window = 4

(* Union of two sorted-disjoint interval lists, overlaps coalesced. *)
let merge_intervals a b =
  let rec go = function
    | (s1, e1) :: (s2, e2) :: tl when s2 <= e1 ->
      go ((s1, Float.max e1 e2) :: tl)
    | h :: tl -> h :: go tl
    | [] -> []
  in
  go (List.sort compare (a @ b))

let run_one ?(duplex = false) ~discipline sc =
  ignore (Plan.host_v ~crash:sc.crash ());
  (* A server crash episode kills the link in both directions for its
     duration (a dead host neither sends nor receives); the frames
     sitting in its NIC rings at crash time are volatile state and are
     wiped below.  Socket state survives (stable storage), so TCP
     retransmission must recover the stream after the restart. *)
  let wire_plan =
    if sc.crash = [] then sc.plan
    else
      { sc.plan with Plan.down = merge_intervals sc.plan.Plan.down sc.crash }
  in
  let payload = payloads sc in
  let total_bytes = sc.chunks * sc.chunk_bytes in
  let expected =
    String.concat "" (Array.to_list (Array.map Bytes.to_string payload))
  in
  let net = Netsim.create () in
  let engine = Netsim.engine net in
  let pool = Pool.create () in
  (* One message pool per exchange: hosts draw their reply messages from
     it, the schedulers release into it, and at quiesce its ledger must
     balance exactly like the mbuf pool's. *)
  let mpool = Core.Msg.pool () in
  let ipv4 = Ldlp_packet.Addr.Ipv4.of_string in
  let server_ip = ipv4 "10.0.0.1" and client_ip = ipv4 "10.0.0.2" in
  let mk_host ~ip ~mac =
    Host.create ~pool ~msg_pool:mpool
      ~mac:(Ldlp_packet.Addr.Mac.of_string mac) ~ip ()
  in
  let server_host = mk_host ~ip:server_ip ~mac:"02:00:00:00:00:01" in
  let client_host = mk_host ~ip:client_ip ~mac:"02:00:00:00:00:02" in
  ignore (Host.listen server_host ~port:server_port);
  (* Client application state. *)
  let client_pcb = ref None in
  let sent_idx = ref 0 in
  let recvd = Buffer.create total_bytes in
  let completion = ref None in
  let xmit nic frame = if not (Nic.transmit nic frame) then Mbuf.free pool frame in
  let server_service host ~emit =
    match
      Pcb.lookup (Host.table host) ~local_port:server_port
        ~remote:(client_ip, client_port)
    with
    | Some pcb
      when (pcb.Pcb.state = Pcb.Established || pcb.Pcb.state = Pcb.Close_wait)
           && Sockbuf.length pcb.Pcb.sockbuf > 0
           && Pcb.unacked pcb < 2 * client_window -> (
      let data = Sockbuf.read_all pcb.Pcb.sockbuf in
      match Host.send host pcb data with
      | Some frame -> emit frame
      | None -> ())
    | _ -> ()
  in
  let client_service _host ~emit =
    match !client_pcb with
    | Some pcb when pcb.Pcb.state = Pcb.Established ->
      if Sockbuf.length pcb.Pcb.sockbuf > 0 then begin
        Buffer.add_bytes recvd (Sockbuf.read_all pcb.Pcb.sockbuf);
        if Buffer.length recvd >= total_bytes && !completion = None then
          completion := Some (Engine.now engine)
      end;
      while !sent_idx < sc.chunks && Pcb.unacked pcb < client_window do
        (match Host.send client_host pcb payload.(!sent_idx) with
        | Some frame -> emit frame
        | None -> ());
        incr sent_idx
      done
    | _ -> ()
  in
  (* A node's scheduler is either the classic receive chain ([Sched],
     app-built frames transmitted directly) or one full-duplex engine
     ([Host.duplex]): received frames enter the rx side, app-built frames
     are submitted at the tx entry and descend the transmit nodes before
     reaching the NIC. *)
  let mk_node ~name host ~on_service =
    let nic =
      Nic.create ~rx_slots:256 ~tx_slots:256 ~irq:(Nic.Coalesced 4) ()
    in
    let wrap frame =
      Core.Msg.acquire mpool
        ~arrival:(Engine.now engine)
        ~size:(Mbuf.length frame) (Host.wrap host frame)
    in
    let shed m =
      Mbuf.free pool m.Core.Msg.payload.Host.buf;
      Core.Msg.release mpool m
    in
    let drive, emit, shed_count =
      if duplex then begin
        let eng =
          Host.duplex host ~discipline
            ~wire:(fun frame -> xmit nic frame)
            ?intake_limit:sc.intake_limit ~on_shed:shed ()
        in
        let rx = Core.Engine.duplex_rx_entry eng
        and tx = Core.Engine.duplex_tx_entry eng in
        ( (fun nic ->
            List.iter
              (fun f -> Core.Engine.inject eng ~node:rx (wrap f))
              (Nic.take_all nic);
            Core.Engine.run eng),
          (fun frame ->
            Core.Engine.inject eng ~node:tx (wrap frame);
            Core.Engine.run eng),
          fun () -> (Core.Engine.stats eng).Core.Engine.shed )
      end
      else begin
        let sched =
          Core.Sched.create ~discipline ~layers:(Host.layers host)
            ~down:(fun m ->
              xmit nic m.Core.Msg.payload.Host.buf;
              Core.Msg.release mpool m)
            ~on_consume:(fun m -> Core.Msg.release mpool m)
            ?intake_limit:sc.intake_limit ~on_shed:shed ()
        in
        ( (fun nic ->
            ignore (Nic.service_into nic sched ~wrap);
            Core.Sched.run sched),
          (fun frame -> xmit nic frame),
          fun () -> (Core.Sched.stats sched).Core.Sched.shed )
      end
    in
    let node =
      Netsim.add_node net ~name ~nic
        ~service:(fun nic ->
          drive nic;
          on_service host ~emit)
        ()
    in
    (* Timer transmissions happen outside an interrupt service; kick the
       node so Netsim pumps them onto the wire. *)
    Host.attach_timers host
      ~now:(fun () -> Engine.now engine)
      ~schedule:(fun d k -> Engine.after engine d k)
      ~tx:(fun frame ->
        if Nic.transmit (Netsim.nic node) frame then Netsim.kick net node
        else Mbuf.free pool frame);
    (nic, shed_count, node, emit)
  in
  let server_nic, server_shed, server_node, _server_emit =
    mk_node ~name:"server" server_host ~on_service:server_service
  in
  let client_nic, client_shed, client_node, client_emit =
    mk_node ~name:"client" client_host ~on_service:client_service
  in
  let mk_impair ~seed =
    Impair.create
      ~clone:(fun m -> Mbuf.of_bytes pool (Mbuf.to_bytes m))
      ~corrupt:(corruptor ~seed:(seed lxor 0xc0ffee))
      ~free:(fun m -> Mbuf.free pool m)
      ~seed wire_plan
  in
  let imp_cs = mk_impair ~seed:((2 * sc.seed) + 1) in
  let imp_sc = mk_impair ~seed:((2 * sc.seed) + 2) in
  Netsim.connect net client_node server_node ~latency:1e-3 ~impair_ab:imp_cs
    ~impair_ba:imp_sc ();
  (* Crash instants: wipe the server's volatile ring state.  Scheduled
     before the exchange starts, so [Engine.after] delays are absolute
     times. *)
  List.iter
    (fun (down_at, _) ->
      Engine.after engine down_at (fun () ->
          List.iter (Mbuf.free pool) (Nic.take_all server_nic);
          List.iter (Mbuf.free pool) (Nic.wire_take_all server_nic)))
    sc.crash;
  (* Active open, then run to quiescence: every armed timer is conditional
     on unacknowledged state, so the engine drains exactly when recovery
     is complete. *)
  let pcb, syn =
    Host.connect client_host ~dst:(server_ip, server_port)
      ~src_port:client_port
  in
  client_pcb := Some pcb;
  client_emit syn;
  Netsim.kick net client_node;
  (if Sys.getenv_opt "LDLP_SOAK_DEBUG" <> None then begin
     let steps = ref 0 in
     while Engine.step engine do
       incr steps;
       if !steps mod 5000 = 0 then
         Printf.eprintf "steps=%d now=%.4f sent=%d recvd=%d pending=%d\n%!"
           !steps (Engine.now engine) !sent_idx (Buffer.length recvd)
           (Engine.pending engine)
     done
   end
   else Netsim.run net);
  (* Teardown: reclaim anything the fault model or the rings still hold,
     then audit the pool. *)
  let free_emissions imp =
    List.iter
      (fun (e : Mbuf.t Impair.emission) -> Mbuf.free pool e.Impair.frame)
      (Impair.flush imp)
  in
  free_emissions imp_cs;
  free_emissions imp_sc;
  List.iter (Mbuf.free pool) (Nic.take_all server_nic);
  List.iter (Mbuf.free pool) (Nic.take_all client_nic);
  List.iter (Mbuf.free pool) (Nic.wire_take_all server_nic);
  List.iter (Mbuf.free pool) (Nic.wire_take_all client_nic);
  let pstats = Pool.stats pool in
  let mstats = Core.Msg.pool_stats mpool in
  let ics = Impair.stats imp_cs and isc = Impair.stats imp_sc in
  let cc = Host.counters client_host and sc_c = Host.counters server_host in
  {
    completed = !completion <> None;
    integrity = String.equal (Buffer.contents recvd) expected;
    leak_free =
      pstats.Pool.small_in_use = 0
      && pstats.Pool.cluster_in_use = 0
      && mstats.Core.Msg.p_outstanding = 0;
    retransmits = cc.Host.retransmits + sc_c.Host.retransmits;
    shed = client_shed () + server_shed ();
    echoed_bytes = Buffer.length recvd;
    completion =
      (match !completion with Some t -> t | None -> Engine.now engine);
    dropped = ics.Impair.dropped + isc.Impair.dropped;
    duplicated = ics.Impair.duplicated + isc.Impair.duplicated;
    corrupted = ics.Impair.corrupted + isc.Impair.corrupted;
    reordered = ics.Impair.reordered + isc.Impair.reordered;
  }

let run_scenario ?(duplex = false) sc =
  let conventional = run_one ~duplex ~discipline:Core.Sched.Conventional sc in
  let ldlp =
    run_one ~duplex ~discipline:(Core.Sched.Ldlp Core.Batch.paper_default) sc
  in
  let equivalent =
    conventional.completed && ldlp.completed && conventional.integrity
    && ldlp.integrity
    && conventional.echoed_bytes = ldlp.echoed_bytes
  in
  { scenario = sc; conventional; ldlp; equivalent }

let run_all ?domains ?(duplex = false) scs =
  Ldlp_par.Pool.map ?domains (run_scenario ~duplex) scs

(* ---------- rendering ---------- *)

let b2s ok = if ok then "ok" else "FAIL"

let render reports =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "chaos soak: tcpmini echo under fault injection\n";
  add "%3s  %-44s %6s %6s %5s %5s %8s %6s\n" "id" "plan" "conv" "ldlp"
    "rexmt" "shed" "bytes" "equiv";
  List.iter
    (fun r ->
      let plan_s =
        Plan.describe r.scenario.plan
        ^
        if r.scenario.crash = [] then ""
        else
          " " ^ Plan.describe_host (Plan.host_v ~crash:r.scenario.crash ())
      in
      add "%3d  %-44s %6s %6s %5d %5d %8d %6s\n" r.scenario.id plan_s
        (b2s (outcome_ok r.scenario r.conventional))
        (b2s (outcome_ok r.scenario r.ldlp))
        r.ldlp.retransmits r.ldlp.shed r.ldlp.echoed_bytes
        (b2s r.equivalent))
    reports;
  let total = List.length reports in
  let passed = List.length (List.filter report_ok reports) in
  add "%d/%d scenarios ok\n" passed total;
  Buffer.contents buf

(* ---------- bench ladder ---------- *)

type ladder_row = {
  loss : float;
  goodput : float;
  ladder_retransmits : int;
  ladder_completion : float;
  ok : bool;
}

let loss_ladder ~seed ~rates =
  List.map
    (fun loss ->
      let plan = if loss <= 0.0 then Plan.none else Plan.v ~drop:loss () in
      let sc =
        { id = 0; seed; plan; chunks = 32; chunk_bytes = 64;
          intake_limit = None; crash = [] }
      in
      let o = run_one ~discipline:(Core.Sched.Ldlp Core.Batch.paper_default) sc in
      {
        loss;
        goodput =
          (if o.completion > 0.0 then
             float_of_int o.echoed_bytes /. o.completion
           else 0.0);
        ladder_retransmits = o.retransmits;
        ladder_completion = o.completion;
        ok = outcome_ok sc o;
      })
    rates
