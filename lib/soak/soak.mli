(** Chaos soak: the tcpmini echo exchange under seeded fault injection.

    Each scenario wires two complete TCP/IP hosts (client and server)
    over a {!Ldlp_netsim} link carrying an {!Ldlp_fault.Impair} engine in
    each direction, runs a windowed echo exchange to quiescence under a
    scheduling discipline, and checks what the paper takes for granted on
    its lossless measurement LAN:

    - {b integrity} — the client receives back exactly the byte stream it
      sent (per-chunk content is seeded and index-stamped, so any
      duplicated, reordered or corrupted delivery shows up);
    - {b leak freedom} — after quiescence and teardown the shared
      {!Ldlp_buf.Pool} has zero small or cluster mbufs in use;
    - {b discipline equivalence} — Conventional and LDLP scheduling
      deliver the same bytes over the same fault sequence (the paper's
      claim that LDLP changes {e when} layers run, never {e what} they
      compute, extended to the recovery path).

    Everything is deterministic: a (seed, scenario count) pair names the
    same fault plans, the same payloads and the same outcomes on any
    machine and any domain count. *)

type scenario = {
  id : int;
  seed : int;  (** Seeds the impairment streams and payloads. *)
  plan : Ldlp_fault.Plan.t;  (** Applied to both link directions. *)
  chunks : int;
  chunk_bytes : int;
  intake_limit : int option;
      (** Overload watermark for both hosts' schedulers (see
          {!Ldlp_core.Sched.create}); shed frames must be recovered by
          retransmission like wire drops. *)
  crash : (float * float) list;
      (** Server crash/restart episodes [(down_at, up_at)), sorted and
          disjoint (validated as a {!Ldlp_fault.Plan.host} lifecycle).
          While down the host neither sends nor receives — the link is
          dark in both directions — and at [down_at] the frames in its
          NIC rings (volatile state) are wiped.  Socket state survives
          the restart, so TCP retransmission must recover the byte
          stream, under both disciplines, with full integrity. *)
}

val scenarios : seed:int -> count:int -> scenario list
(** The soak matrix: scenario 0 is pristine ({!Ldlp_fault.Plan.none} —
    must complete with zero retransmissions), scenario 1 is the
    acceptance chaos mix (5% loss + 2% duplication + 0.1% corruption +
    10% reordering over a 4-frame window), and the rest draw impairments
    (and occasional intake limits, down episodes and mid-transfer server
    crash/restart episodes) from a PRNG seeded by [seed].  Crash episodes
    come from an independent stream, so the fault plans drawn for a given
    (seed, count) are unchanged from the pre-crash matrix. *)

type outcome = {
  completed : bool;  (** Every echoed byte arrived before quiescence. *)
  integrity : bool;  (** Echoed stream identical to the sent stream. *)
  leak_free : bool;  (** Pool empty after teardown. *)
  retransmits : int;  (** Client + server, timeouts and fast retransmits. *)
  shed : int;  (** Frames refused by the intake watermark. *)
  echoed_bytes : int;
  completion : float;  (** Sim time when the last echoed byte arrived. *)
  dropped : int;  (** Random drops + ring-full drops, both directions. *)
  duplicated : int;
  corrupted : int;
  reordered : int;
}

val outcome_ok : scenario -> outcome -> bool
(** [completed && integrity && leak_free], plus zero retransmissions when
    the plan is pristine and no crash episode is scheduled. *)

type report = {
  scenario : scenario;
  conventional : outcome;
  ldlp : outcome;
  equivalent : bool;
      (** Both disciplines completed with integrity and delivered the
          same byte count. *)
}

val report_ok : report -> bool

val run_scenario : ?duplex:bool -> scenario -> report
(** Run the echo exchange twice (Conventional, then LDLP) over the
    scenario's fault plan.  Pure: no wall clock, no global RNG.

    With [duplex] (default false) each host runs both stack directions
    under one {!Ldlp_tcpmini.Host.duplex} engine: received frames enter
    the rx side and application frames are submitted at the tx entry,
    so TCP replies descend the transmit nodes of the same scheduling
    pass.  Every integrity/leak/equivalence check is unchanged — the
    duplex arrangement must put byte-identical frames on the wire. *)

val run_all : ?domains:int -> ?duplex:bool -> scenario list -> report list
(** Run scenarios through {!Ldlp_par.Pool.map}: input order, and the
    same results for any [domains]. *)

val render : report list -> string
(** Fixed-width summary table (golden-snapshotted; keep deterministic). *)

type ladder_row = {
  loss : float;
  goodput : float;  (** Echoed payload bytes per sim second (LDLP run). *)
  ladder_retransmits : int;
  ladder_completion : float;
  ok : bool;
}

val loss_ladder : seed:int -> rates:float list -> ladder_row list
(** One full-chaos-free soak per loss rate (drop only), for
    [bench --soak]: how goodput decays and retransmissions grow as the
    lossless-LAN assumption is relaxed. *)
