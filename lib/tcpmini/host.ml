module Pkt = Ldlp_packet
module Mbuf = Ldlp_buf.Mbuf
module Core = Ldlp_core
module Metrics = Ldlp_obs.Metrics

type counters = {
  frames_in : int;
  non_ip : int;
  non_tcp : int;
  bad_ip : int;
  delivered_bytes : int;
  retransmits : int;
}

type item = { mutable buf : Mbuf.t; mutable src_ip : Pkt.Addr.Ipv4.t }

type timers = {
  now : unit -> float;
  schedule : float -> (unit -> unit) -> unit;
  tx : Mbuf.t -> unit;
}

type t = {
  pool : Ldlp_buf.Pool.t;
  msg_pool : item Ldlp_core.Msg.pool option;
  mac : Pkt.Addr.Mac.t;
  my_ip : Pkt.Addr.Ipv4.t;
  gateway_mac : Pkt.Addr.Mac.t;
  pcbs : Pcb.table;
  reasm : Pkt.Reasm.t option;
  mutable c : counters;
  mutable ident : int;
  mutable timers : timers option;
  (* Scalar mirrors of [counters] on an attached metric sheet (dummy refs
     otherwise), bumped through the gated [Metrics.add_scalar]. *)
  frames_in_sc : int ref;
  non_ip_sc : int ref;
  non_tcp_sc : int ref;
  bad_ip_sc : int ref;
  delivered_bytes_sc : int ref;
  retransmits_sc : int ref;
}

let create ~pool ?msg_pool ~mac ~ip ?(gateway_mac = Pkt.Addr.Mac.broadcast)
    ?(reassemble = false) ?metrics () =
  let sc name =
    match metrics with None -> ref 0 | Some m -> Metrics.scalar m name
  in
  {
    pool;
    msg_pool;
    mac;
    my_ip = ip;
    gateway_mac;
    pcbs = Pcb.create_table ();
    reasm = (if reassemble then Some (Pkt.Reasm.create ()) else None);
    c =
      {
        frames_in = 0;
        non_ip = 0;
        non_tcp = 0;
        bad_ip = 0;
        delivered_bytes = 0;
        retransmits = 0;
      };
    ident = 0;
    timers = None;
    frames_in_sc = sc "frames_in";
    non_ip_sc = sc "non_ip";
    non_tcp_sc = sc "non_tcp";
    bad_ip_sc = sc "bad_ip";
    delivered_bytes_sc = sc "delivered_bytes";
    retransmits_sc = sc "retransmits";
  }

let wrap t m = { buf = m; src_ip = t.my_ip }

let listen t ~port = Pcb.listen t.pcbs ~port ()

let table t = t.pcbs

let ip t = t.my_ip

let counters t = t.c

(* Headers are written with the cursor writers straight into the chain's
   leading space — no scratch header buffer, no header records — and are
   byte-identical to what the [encapsulate] record path produced. *)
let build_frame t ~dst_ip segment =
  let m = Mbuf.of_bytes t.pool segment in
  t.ident <- (t.ident + 1) land 0xFFFF;
  let total_length = Mbuf.length m + Pkt.Ipv4.header_bytes in
  let m = Mbuf.prepend m Pkt.Ipv4.header_bytes in
  Pkt.Ipv4.write ~tos:0 ~total_length ~ident:t.ident ~dont_fragment:true
    ~more_fragments:false ~fragment_offset:0 ~ttl:64
    ~protocol:Pkt.Ipv4.proto_tcp ~src:t.my_ip ~dst:dst_ip (Mbuf.seg_data m)
    (Mbuf.seg_off m);
  let m = Mbuf.prepend m Pkt.Ethernet.header_bytes in
  Pkt.Ethernet.write ~dst:t.gateway_mac ~src:t.mac
    ~ethertype:Pkt.Ethernet.ethertype_ipv4 (Mbuf.seg_data m) (Mbuf.seg_off m);
  m

let reply_frame t (r : Tcp_input.reply) =
  let segment =
    Tcp_output.build ~src:t.my_ip ~dst:r.Tcp_input.dst
      ~src_port:r.Tcp_input.src_port ~dst_port:r.Tcp_input.dst_port
      ~seq:r.Tcp_input.seq ~ack:r.Tcp_input.ack ~flags:r.Tcp_input.flags
      ~window:r.Tcp_input.window ()
  in
  build_frame t ~dst_ip:r.Tcp_input.dst segment

(* ---------- loss recovery (only active once timers are attached) ---------- *)

let delack_timeout = 0.04

let attach_timers t ~now ~schedule ~tx = t.timers <- Some { now; schedule; tx }

(* Rebuild a tracked segment as a complete Ethernet frame.  The ACK field
   is refreshed to the current [rcv_nxt] (a retransmission carries the
   newest acknowledgment, like the real stack's output routine). *)
let seg_frame t (pcb : Pcb.t) (s : Pcb.seg) =
  match pcb.Pcb.remote with
  | None -> None
  | Some (rip, rport) ->
    let has_ack = s.Pcb.seg_flags land Pkt.Tcp.flag_ack <> 0 in
    let segment =
      Tcp_output.build ~src:t.my_ip ~dst:rip ~src_port:pcb.Pcb.local_port
        ~dst_port:rport ~seq:s.Pcb.seg_seq
        ~ack:(if has_ack then pcb.Pcb.rcv_nxt else 0l)
        ~flags:s.Pcb.seg_flags
        ~window:(Sockbuf.space pcb.Pcb.sockbuf)
        ~payload:s.Pcb.seg_payload ()
    in
    Some (build_frame t ~dst_ip:rip segment)

let count_retransmit t =
  t.c <- { t.c with retransmits = t.c.retransmits + 1 };
  Metrics.add_scalar t.retransmits_sc 1

let retransmit_seg t pcb (s : Pcb.seg) ~now =
  match seg_frame t pcb s with
  | None -> None
  | Some frame ->
    s.Pcb.seg_sent_at <- now;
    s.Pcb.seg_rexmits <- s.Pcb.seg_rexmits + 1;
    count_retransmit t;
    Some frame

(* The retransmission timer is armed on demand (a self-rescheduling tick
   would keep the discrete-event engine from ever quiescing): one event
   per PCB at the oldest unacked segment's deadline.  When it fires
   early — the queue head changed, or an ACK advanced [sent_at] — it
   simply re-arms. *)
let rec arm_rtx t (pcb : Pcb.t) =
  match t.timers with
  | None -> ()
  | Some tm ->
    if not pcb.Pcb.rtx_armed then begin
      match Pcb.oldest_unacked pcb with
      | None -> ()
      | Some s ->
        pcb.Pcb.rtx_armed <- true;
        let deadline = s.Pcb.seg_sent_at +. Rto.rto pcb.Pcb.rto in
        let delay = Float.max 0.0 (deadline -. tm.now ()) in
        tm.schedule delay (fun () -> rtx_fire t pcb)
    end

and rtx_fire t (pcb : Pcb.t) =
  pcb.Pcb.rtx_armed <- false;
  match t.timers with
  | None -> ()
  | Some tm -> (
    if pcb.Pcb.state <> Pcb.Closed then
      match Pcb.oldest_unacked pcb with
      | None -> ()
      | Some s ->
        let now = tm.now () in
        if s.Pcb.seg_sent_at +. Rto.rto pcb.Pcb.rto <= now +. 1e-9 then begin
          (match retransmit_seg t pcb s ~now with
          | Some frame -> tm.tx frame
          | None -> ());
          Rto.backoff pcb.Pcb.rto
        end;
        arm_rtx t pcb)

let arm_delack t (pcb : Pcb.t) =
  match t.timers with
  | None -> ()
  | Some tm ->
    if (not pcb.Pcb.delack_armed) && pcb.Pcb.delayed_ack > 0 then begin
      pcb.Pcb.delack_armed <- true;
      tm.schedule delack_timeout (fun () ->
          pcb.Pcb.delack_armed <- false;
          match pcb.Pcb.remote with
          | Some (rip, rport)
            when pcb.Pcb.delayed_ack > 0
                 && (pcb.Pcb.state = Pcb.Established
                    || pcb.Pcb.state = Pcb.Close_wait) ->
            pcb.Pcb.delayed_ack <- 0;
            let segment =
              Tcp_output.build ~src:t.my_ip ~dst:rip
                ~src_port:pcb.Pcb.local_port ~dst_port:rport
                ~seq:pcb.Pcb.snd_nxt ~ack:pcb.Pcb.rcv_nxt
                ~flags:Pkt.Tcp.flag_ack
                ~window:(Sockbuf.space pcb.Pcb.sockbuf) ()
            in
            tm.tx (build_frame t ~dst_ip:rip segment)
          | _ -> ())
    end

(* Track a transmitted segment and make sure the timer covers it. *)
let track_tx t (pcb : Pcb.t) ~seq ~flags payload =
  match t.timers with
  | None -> ()
  | Some tm ->
    Pcb.track pcb ~now:(tm.now ()) ~seq ~flags payload;
    arm_rtx t pcb

(* Post-input recovery hook, run after the TCP layer has processed a
   segment for [pcb]: emit a pending fast retransmit, keep the
   retransmission timer armed while data is outstanding, and arm the
   delayed-ACK timer when an ACK is owed. *)
let recovery_frames t (pcb : Pcb.t) ~now =
  match t.timers with
  | None -> []
  | Some _ ->
    let fast =
      if pcb.Pcb.fast_retx_pending then begin
        pcb.Pcb.fast_retx_pending <- false;
        match Pcb.oldest_unacked pcb with
        | None -> []
        | Some s -> (
          match retransmit_seg t pcb s ~now with
          | Some frame -> [ frame ]
          | None -> [])
      end
      else []
    in
    arm_rtx t pcb;
    arm_delack t pcb;
    fast

let layers t =
  let consume_bad m =
    Mbuf.free t.pool m;
    Core.Layer.consume_only
  in
  let ether =
    Core.Layer.v ~name:"ether"
      ~fp:(Core.Layer.footprint ~code_bytes:4480 ~data_bytes:864 ())
      (fun msg ->
        t.c <- { t.c with frames_in = t.c.frames_in + 1 };
        Metrics.add_scalar t.frames_in_sc 1;
        let m = msg.Core.Msg.payload.buf in
        if Mbuf.contiguous m Pkt.Ethernet.header_bytes then begin
          (* Cursor fast path: the header is in the head mbuf (always, for
             frames the NIC delivers), so filter and strip it in place —
             no header record, no MAC extraction. *)
          let buf = Mbuf.seg_data m and off = Mbuf.seg_off m in
          if
            Pkt.Ethernet.ethertype_at buf off = Pkt.Ethernet.ethertype_ipv4
            && (Pkt.Ethernet.dst_equal t.mac buf off
               || Pkt.Ethernet.dst_is_broadcast buf off)
          then begin
            Mbuf.adj m Pkt.Ethernet.header_bytes;
            Core.Layer.up_only
          end
          else begin
            t.c <- { t.c with non_ip = t.c.non_ip + 1 };
            Metrics.add_scalar t.non_ip_sc 1;
            consume_bad m
          end
        end
        else
          (* Record path: header split across mbufs, or a runt frame. *)
          match Pkt.Ethernet.strip m with
          | Ok h
            when h.Pkt.Ethernet.ethertype = Pkt.Ethernet.ethertype_ipv4
                 && (Pkt.Addr.Mac.equal h.Pkt.Ethernet.dst t.mac
                    || Pkt.Addr.Mac.is_broadcast h.Pkt.Ethernet.dst) ->
            Core.Layer.up_only
          | Ok _ | Error _ ->
            t.c <- { t.c with non_ip = t.c.non_ip + 1 };
            Metrics.add_scalar t.non_ip_sc 1;
            consume_bad m)
  in
  let ip_layer =
    Core.Layer.v ~name:"ip"
      ~fp:(Core.Layer.footprint ~code_bytes:2784 ~data_bytes:480 ())
      (fun msg ->
        let m = msg.Core.Msg.payload.buf in
        let len = Mbuf.length m in
        let fast =
          (* Cursor fast path: an option-free, unfragmented TCP datagram
             for this host whose header sits in the head mbuf — checked
             and stripped in place (same validation [Ipv4.strip] runs,
             including the checksum).  Anything else falls through to the
             record path untouched; [check_at] mutates nothing. *)
          Mbuf.contiguous m Pkt.Ipv4.header_bytes
          &&
          let buf = Mbuf.seg_data m and off = Mbuf.seg_off m in
          Pkt.Ipv4.ihl_at buf off = 5
          && (match Pkt.Ipv4.check_at buf off Pkt.Ipv4.header_bytes with
             | Ok _ -> true
             | Error _ -> false)
          && Pkt.Ipv4.protocol_at buf off = Pkt.Ipv4.proto_tcp
          && Pkt.Ipv4.frag_at buf off land 0x3FFF = 0
          && Pkt.Addr.Ipv4.equal (Pkt.Ipv4.dst_at buf off) t.my_ip
          && Pkt.Ipv4.total_length_at buf off <= len
        in
        if fast then begin
          let buf = Mbuf.seg_data m and off = Mbuf.seg_off m in
          let total_length = Pkt.Ipv4.total_length_at buf off in
          msg.Core.Msg.payload.src_ip <- Pkt.Ipv4.src_at buf off;
          (* Drop link padding, then the header itself — as [strip]. *)
          if len > total_length then Mbuf.adj m (-(len - total_length));
          Mbuf.adj m Pkt.Ipv4.header_bytes;
          Core.Layer.up_only
        end
        else
        match Pkt.Ipv4.strip m with
        | Ok h
          when h.Pkt.Ipv4.protocol = Pkt.Ipv4.proto_tcp
               && (not (Pkt.Ipv4.is_fragment h))
               && Pkt.Addr.Ipv4.equal h.Pkt.Ipv4.dst t.my_ip ->
          msg.Core.Msg.payload.src_ip <- h.Pkt.Ipv4.src;
          Core.Layer.up_only
        | Ok h
          when Pkt.Ipv4.is_fragment h
               && h.Pkt.Ipv4.protocol = Pkt.Ipv4.proto_tcp
               && Pkt.Addr.Ipv4.equal h.Pkt.Ipv4.dst t.my_ip
               && t.reasm <> None -> (
          (* Slow path: feed the reassembly queue; a completed datagram
             continues up as a fresh contiguous chain. *)
          let payload = Mbuf.to_bytes m in
          Mbuf.free t.pool m;
          match
            Pkt.Reasm.input (Option.get t.reasm)
              ~now:msg.Core.Msg.arrival h payload
          with
          | Pkt.Reasm.Complete (h, datagram) ->
            msg.Core.Msg.payload.buf <- Mbuf.of_bytes t.pool datagram;
            msg.Core.Msg.payload.src_ip <- h.Pkt.Ipv4.src;
            Core.Layer.up_only
          | Pkt.Reasm.Pending -> Core.Layer.consume_only
          | Pkt.Reasm.Rejected _ ->
            t.c <- { t.c with bad_ip = t.c.bad_ip + 1 };
            Metrics.add_scalar t.bad_ip_sc 1;
            Core.Layer.consume_only)
        | Ok h when h.Pkt.Ipv4.protocol <> Pkt.Ipv4.proto_tcp ->
          t.c <- { t.c with non_tcp = t.c.non_tcp + 1 };
          Metrics.add_scalar t.non_tcp_sc 1;
          consume_bad m
        | Ok _ | Error _ ->
          t.c <- { t.c with bad_ip = t.c.bad_ip + 1 };
          Metrics.add_scalar t.bad_ip_sc 1;
          consume_bad m)
  in
  let tcp =
    Core.Layer.v ~name:"tcp"
      ~fp:(Core.Layer.footprint ~code_bytes:5536 ~data_bytes:544 ())
      (fun msg ->
        let m = msg.Core.Msg.payload.buf in
        let o =
          Tcp_input.segment_arrived t.pcbs ~my_ip:t.my_ip
            ~src_ip:msg.Core.Msg.payload.src_ip ~pool:t.pool
            ~now:msg.Core.Msg.arrival m
        in
        t.c <- { t.c with delivered_bytes = t.c.delivered_bytes + o.Tcp_input.delivered };
        Metrics.add_scalar t.delivered_bytes_sc o.Tcp_input.delivered;
        let send_down frame =
          (* Outbound frames draw their message from the host's pool when
             one is attached (released again at the wire/consume sinks);
             without a pool, the pre-pooling copy-on-write behavior. *)
          let item = { buf = frame; src_ip = t.my_ip } in
          let size = Mbuf.length frame in
          Core.Layer.Send_down
            (match t.msg_pool with
            | Some mp ->
              Core.Msg.acquire mp ~arrival:msg.Core.Msg.arrival ~size item
            | None -> Core.Msg.with_payload msg item ~size)
        in
        let downs =
          List.map
            (fun (r : Tcp_input.reply) ->
              (* A SYN-bearing reply (the SYN-ACK) consumes sequence space
                 and must survive loss like data does. *)
              (if r.Tcp_input.flags land Pkt.Tcp.flag_syn <> 0 then
                 match o.Tcp_input.pcb with
                 | Some pcb ->
                   track_tx t pcb ~seq:r.Tcp_input.seq ~flags:r.Tcp_input.flags
                     Bytes.empty
                 | None -> ());
              send_down (reply_frame t r))
            o.Tcp_input.replies
        in
        let recovery =
          match o.Tcp_input.pcb with
          | Some pcb ->
            List.map send_down
              (recovery_frames t pcb ~now:msg.Core.Msg.arrival)
          | None -> []
        in
        Core.Layer.Consume :: (downs @ recovery))
  in
  [ ether; ip_layer; tcp ]

(* Full-duplex: both directions of [layers] under one engine, so ACKs
   generated while draining a receive batch descend through the transmit
   nodes of the same scheduling pass.  The receive path already builds
   complete Ethernet frames and the layers' transmit handlers default to
   passthrough, so the wire sees byte-identical frames to the [Sched]
   arrangement — only the scheduling changes. *)
let duplex t ~discipline ?(wire = fun _ -> ()) ?intake_limit
    ?(on_shed = fun _ -> ()) ?metrics () =
  match t.msg_pool with
  | Some mp ->
    (* With a message pool attached the engine is also where messages
       die, so the wire and consume sinks recycle them.  Messages the
       caller sheds (refused at intake) are the caller's to release. *)
    Core.Engine.duplex ~discipline ~layers:(layers t)
      ~wire:(fun m ->
        wire m.Core.Msg.payload.buf;
        Core.Msg.release mp m)
      ~on_consume:(fun m -> Core.Msg.release mp m)
      ?intake_limit ~on_shed ?metrics ()
  | None ->
    Core.Engine.duplex ~discipline ~layers:(layers t)
      ~wire:(fun m -> wire m.Core.Msg.payload.buf)
      ?intake_limit ~on_shed ?metrics ()

let connect t ~dst:(dst_ip, dst_port) ~src_port =
  let pcb =
    Pcb.insert_active t.pcbs ~local_port:src_port ~remote:(dst_ip, dst_port) ()
  in
  pcb.Pcb.snd_nxt <- Tcp_input.initial_send_seq;
  pcb.Pcb.snd_una <- Tcp_input.initial_send_seq;
  let segment =
    Tcp_output.build ~src:t.my_ip ~dst:dst_ip ~src_port ~dst_port
      ~seq:pcb.Pcb.snd_nxt ~ack:0l ~flags:Pkt.Tcp.flag_syn
      ~window:(Sockbuf.space pcb.Pcb.sockbuf) ()
  in
  track_tx t pcb ~seq:pcb.Pcb.snd_nxt ~flags:Pkt.Tcp.flag_syn Bytes.empty;
  pcb.Pcb.snd_nxt <- Pkt.Tcp.seq_add pcb.Pcb.snd_nxt 1;
  (pcb, build_frame t ~dst_ip segment)

let send t (pcb : Pcb.t) payload =
  match (pcb.Pcb.state, pcb.Pcb.remote) with
  | (Pcb.Established | Pcb.Close_wait), Some (rip, rport) ->
    let seq = pcb.Pcb.snd_nxt in
    let flags = Pkt.Tcp.flag_ack lor Pkt.Tcp.flag_psh in
    let segment =
      Tcp_output.build ~src:t.my_ip ~dst:rip ~src_port:pcb.Pcb.local_port
        ~dst_port:rport ~seq ~ack:pcb.Pcb.rcv_nxt ~flags
        ~window:(Sockbuf.space pcb.Pcb.sockbuf)
        ~payload ()
    in
    pcb.Pcb.snd_nxt <- Pkt.Tcp.seq_add pcb.Pcb.snd_nxt (Bytes.length payload);
    if t.timers <> None then begin
      (* The segment piggybacks the newest ACK, so nothing is owed. *)
      pcb.Pcb.delayed_ack <- 0;
      track_tx t pcb ~seq ~flags payload
    end;
    Some (build_frame t ~dst_ip:rip segment)
  | _ -> None

let client_frame t ~src_ip ~src_port ~dst_port ~seq ~ack ~flags
    ?(payload = Bytes.empty) () =
  let segment =
    Tcp_output.build ~src:src_ip ~dst:t.my_ip ~src_port ~dst_port ~seq ~ack
      ~flags ~window:8760 ~payload ()
  in
  let m = Mbuf.of_bytes t.pool segment in
  let m =
    Pkt.Ipv4.encapsulate m
      {
        Pkt.Ipv4.ihl = 5;
        tos = 0;
        total_length = 0;
        ident = 0;
        dont_fragment = true;
        more_fragments = false;
        fragment_offset = 0;
        ttl = 64;
        protocol = Pkt.Ipv4.proto_tcp;
        src = src_ip;
        dst = t.my_ip;
      }
  in
  Pkt.Ethernet.encapsulate m
    {
      Pkt.Ethernet.dst = t.mac;
      src = Pkt.Addr.Mac.of_string "02:00:00:00:00:aa";
      ethertype = Pkt.Ethernet.ethertype_ipv4;
    }

let parse_tx t item =
  let m = item.buf in
  let result =
    match Pkt.Ethernet.strip m with
    | Error _ -> None
    | Ok _ -> (
      match Pkt.Ipv4.strip ~verify_checksum:true m with
      | Error _ -> None
      | Ok _ -> (
        let len = Mbuf.length m in
        let hdr = Mbuf.copy_out m ~pos:0 ~len:(min len Pkt.Tcp.header_bytes) in
        match Pkt.Tcp.parse hdr 0 (Bytes.length hdr) with
        | Error _ -> None
        | Ok (h, _) ->
          let data_off = min len (h.Pkt.Tcp.data_offset * 4) in
          let payload = Mbuf.copy_out m ~pos:data_off ~len:(len - data_off) in
          Some (h, payload)))
  in
  Mbuf.free t.pool m;
  result
