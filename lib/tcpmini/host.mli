(** A miniature TCP/IP host: the full receive-and-acknowledge stack of the
    paper's Section 2 (Ethernet input, IP input, TCP input with socket
    buffers, and the ACK transmit path), packaged as {!Ldlp_core} layers so
    it can run under conventional or LDLP scheduling unchanged.

    The host consumes raw Ethernet frames (as mbuf chains) and produces
    raw Ethernet frames (ACKs, SYN-ACKs, RSTs) through the stack's
    downward sink. *)

type t

type item = { mutable buf : Ldlp_buf.Mbuf.t; mutable src_ip : Ldlp_packet.Addr.Ipv4.t }
(** What flows through the stack: the frame (headers stripped as it
    climbs) plus the IP source recorded by the IP layer for TCP's
    pseudo-header.  Per-message state must live in the payload — a blocked
    (LDLP) schedule runs a whole batch through one layer before the next
    layer sees any of it, so side-channels through the stack object would
    be overwritten. *)

val create :
  pool:Ldlp_buf.Pool.t ->
  ?msg_pool:item Ldlp_core.Msg.pool ->
  mac:Ldlp_packet.Addr.Mac.t ->
  ip:Ldlp_packet.Addr.Ipv4.t ->
  ?gateway_mac:Ldlp_packet.Addr.Mac.t ->
  ?reassemble:bool ->
  ?metrics:Ldlp_obs.Metrics.t ->
  unit ->
  t
(** [gateway_mac] is the destination of every transmitted frame (no ARP;
    default the broadcast address).  With [reassemble] (default false —
    the paper's traced fast path drops fragments), the IP layer runs the
    {!Ldlp_packet.Reasm} slow path, using message arrival times as the
    reassembly clock.

    [msg_pool], when given, makes the host draw the messages it
    originates (reply/recovery frames in the TCP layer) from that pool
    instead of copying the incoming message, and makes {!duplex} release
    every message back to it at the wire and consume sinks.  The caller
    then owns the ownership discipline: inject only messages acquired
    from the same pool, and release any message it sheds or that leaves
    through its own sinks (see DESIGN.md, "Message-pool ownership").

    [metrics] mirrors {!counters} as gated scalars ("frames_in",
    "non_ip", "non_tcp", "bad_ip", "delivered_bytes"); pass the same
    sheet to the {!Ldlp_core.Sched} driving {!layers} to collect the
    per-layer columns alongside. *)

val listen : t -> port:int -> Pcb.t
(** Open a listening socket; incoming connections clone it. *)

val layers : t -> item Ldlp_core.Layer.t list
(** The stack, bottom-first: ether, ip, tcp.  Feed frames with
    [Sched.inject] (wrap them with {!wrap}); transmitted frames appear at
    the scheduler's [down] sink as complete Ethernet frames. *)

val wrap : t -> Ldlp_buf.Mbuf.t -> item

val duplex :
  t ->
  discipline:Ldlp_core.Engine.discipline ->
  ?wire:(Ldlp_buf.Mbuf.t -> unit) ->
  ?intake_limit:int ->
  ?on_shed:(item Ldlp_core.Msg.t -> unit) ->
  ?metrics:Ldlp_obs.Metrics.t ->
  unit ->
  item Ldlp_core.Engine.t
(** Both directions of {!layers} under one {!Ldlp_core.Engine.duplex}
    instance: inject received frames at
    {!Ldlp_core.Engine.duplex_rx_entry}, submit outbound frames (from
    {!send}/{!connect}, already complete) at
    {!Ldlp_core.Engine.duplex_tx_entry}; [wire] receives every frame
    leaving the bottom transmit node.  Replies the TCP layer generates
    while draining a receive batch cross into the transmit nodes of the
    {e same} scheduling pass, so a receive batch's ACKs descend as one
    transmit batch (cross-direction amortisation).  The wire frames are
    byte-identical to the {!layers}-under-{!Ldlp_core.Sched}
    arrangement.  [metrics] needs [2n] rows named by
    {!Ldlp_core.Engine.duplex_layer_names}.

    When the host was created with a [msg_pool], messages are released
    back to it after [wire] returns and when a layer consumes them;
    [on_shed] messages are {e not} released (the injection never entered
    the engine — the caller still owns it). *)

val table : t -> Pcb.table

val ip : t -> Ldlp_packet.Addr.Ipv4.t

type counters = {
  frames_in : int;
  non_ip : int;
  non_tcp : int;
  bad_ip : int;
  delivered_bytes : int;
  retransmits : int;  (** Segments re-sent by timeout or fast retransmit. *)
}

val counters : t -> counters

(** {1 Loss recovery}

    Without {!attach_timers} the host behaves exactly as before: no
    segment tracking, no timers, no retransmissions (lossless links need
    none and every frame would be acknowledged anyway). *)

val attach_timers :
  t ->
  now:(unit -> float) ->
  schedule:(float -> (unit -> unit) -> unit) ->
  tx:(Ldlp_buf.Mbuf.t -> unit) ->
  unit
(** Connect the host to a clock and event scheduler (typically
    {!Ldlp_sim.Engine} via {!Ldlp_netsim}), enabling loss recovery:

    - transmitted data segments, SYNs and SYN-ACKs are tracked on their
      PCB until acknowledged ({!Pcb.track} / {!Pcb.on_ack});
    - a retransmission timer per connection re-sends the oldest unacked
      segment when its {!Rto} deadline passes, with exponential backoff
      (armed on demand, so an idle host schedules nothing and the
      discrete-event engine can quiesce);
    - the third duplicate ACK triggers a fast retransmit;
    - delayed ACKs are bounded by a 40 ms timer instead of waiting
      indefinitely for a second segment.

    [schedule d k] must run [k] at [now () + d]; [tx] transmits a
    complete Ethernet frame (e.g. [Nic.transmit]). *)

val delack_timeout : float
(** Delayed-ACK bound, 0.04 s — below {!Rto.min_rto} so a delayed ACK can
    never masquerade as a loss. *)

val connect :
  t -> dst:Ldlp_packet.Addr.Ipv4.t * int -> src_port:int -> Pcb.t * Ldlp_buf.Mbuf.t
(** Active open: create a [Syn_sent] PCB and the SYN frame to transmit.
    The connection completes when the peer's SYN-ACK arrives through the
    receive stack. *)

val send : t -> Pcb.t -> bytes -> Ldlp_buf.Mbuf.t option
(** Application send: build a data segment (with PSH|ACK) on an
    established connection, advancing [snd_nxt].  Returns the complete
    Ethernet frame to transmit, or [None] if the connection cannot send
    (listening/closed). *)

(** {1 Client-side helpers (for tests, examples and benchmarks)} *)

val client_frame :
  t ->
  src_ip:Ldlp_packet.Addr.Ipv4.t ->
  src_port:int ->
  dst_port:int ->
  seq:int32 ->
  ack:int32 ->
  flags:int ->
  ?payload:bytes ->
  unit ->
  Ldlp_buf.Mbuf.t
(** A complete, checksummed Ethernet+IP+TCP frame addressed to this host. *)

val parse_tx :
  t -> item -> (Ldlp_packet.Tcp.header * bytes) option
(** Decode a frame the host transmitted (for driving handshakes in
    tests); frees the chain. *)
