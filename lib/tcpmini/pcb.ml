module Ipv4 = Ldlp_packet.Addr.Ipv4
module Tcp = Ldlp_packet.Tcp

type state = Listen | Syn_sent | Syn_received | Established | Close_wait | Closed

let state_name = function
  | Listen -> "listen"
  | Syn_sent -> "syn-sent"
  | Syn_received -> "syn-received"
  | Established -> "established"
  | Close_wait -> "close-wait"
  | Closed -> "closed"

type seg = {
  seg_seq : int32;
  seg_flags : int;
  seg_payload : bytes;
  mutable seg_sent_at : float;
  mutable seg_rexmits : int;
}

type t = {
  local_port : int;
  mutable remote : (Ipv4.t * int) option;
  mutable state : state;
  mutable irs : int32;
  mutable rcv_nxt : int32;
  mutable snd_nxt : int32;
  mutable snd_una : int32;
  mutable delayed_ack : int;
  sockbuf : Sockbuf.t;
  rto : Rto.t;
  mutable retx : seg list;  (* unacknowledged segments, oldest first *)
  mutable dupacks : int;
  mutable fast_retx_pending : bool;
  mutable rtx_armed : bool;
  mutable delack_armed : bool;
}

module Flowtable = Ldlp_flowtable.Flowtable

type key = int * int32 * int (* local port, remote ip, remote port *)

type stats = {
  lookups : int;
  cache_hits : int;
  table_hits : int;
  misses : int;
  allocated : int;
  freed : int;
}

type table = {
  conns : (key, t) Flowtable.t;
  listeners : (int, t) Hashtbl.t;
  mutable cache : (key * t) option;  (* the paper's single-entry PCB cache *)
  mutable s : stats;
}

let create_table () =
  {
    (* [buckets] matches the Hashtbl.create 64 this table replaced, so the
       exact backing store behaves identically; the modeled front cache
       rides behind the paper's one-entry cache. *)
    conns = Flowtable.create ~buckets:64 ~name:"tcp-pcb" ();
    listeners = Hashtbl.create 8;
    cache = None;
    s =
      {
        lookups = 0;
        cache_hits = 0;
        table_hits = 0;
        misses = 0;
        allocated = 0;
        freed = 0;
      };
  }

let fresh ~local_port ~state ?(hiwat = 16384) () =
  {
    local_port;
    remote = None;
    state;
    irs = 0l;
    rcv_nxt = 0l;
    snd_nxt = 1l;
    snd_una = 1l;
    delayed_ack = 0;
    sockbuf = Sockbuf.create ~hiwat ();
    rto = Rto.create ();
    retx = [];
    dupacks = 0;
    fast_retx_pending = false;
    rtx_armed = false;
    delack_armed = false;
  }

let listen table ~port ?hiwat () =
  if Hashtbl.mem table.listeners port then
    invalid_arg (Printf.sprintf "Pcb.listen: port %d already bound" port);
  let pcb = fresh ~local_port:port ~state:Listen ?hiwat () in
  Hashtbl.replace table.listeners port pcb;
  table.s <- { table.s with allocated = table.s.allocated + 1 };
  pcb

let key ~local_port ~remote:(rip, rport) = (local_port, Ipv4.to_int32 rip, rport)

let lookup table ~local_port ~remote =
  table.s <- { table.s with lookups = table.s.lookups + 1 };
  let k = key ~local_port ~remote in
  match table.cache with
  | Some (ck, pcb) when ck = k ->
    table.s <- { table.s with cache_hits = table.s.cache_hits + 1 };
    Some pcb
  | _ -> (
    match Flowtable.lookup table.conns k with
    | Some pcb ->
      table.cache <- Some (k, pcb);
      table.s <- { table.s with table_hits = table.s.table_hits + 1 };
      Some pcb
    | None ->
      (* A listener match is still a connection-table miss: the segment
         took the slow path through demultiplexing. *)
      table.s <- { table.s with misses = table.s.misses + 1 };
      Hashtbl.find_opt table.listeners local_port)

let insert_connection table ~listener ~remote =
  let pcb =
    fresh ~local_port:listener.local_port ~state:Syn_received
      ~hiwat:(Sockbuf.hiwat listener.sockbuf) ()
  in
  pcb.remote <- Some remote;
  let k = key ~local_port:listener.local_port ~remote in
  Flowtable.insert table.conns k pcb;
  table.cache <- Some (k, pcb);
  table.s <- { table.s with allocated = table.s.allocated + 1 };
  pcb

let insert_active table ~local_port ~remote ?(hiwat = 16384) () =
  let k = key ~local_port ~remote in
  if Flowtable.mem table.conns k then
    invalid_arg "Pcb.insert_active: connection exists";
  let pcb = fresh ~local_port ~state:Syn_sent ~hiwat () in
  pcb.remote <- Some remote;
  Flowtable.insert table.conns k pcb;
  table.cache <- Some (k, pcb);
  table.s <- { table.s with allocated = table.s.allocated + 1 };
  pcb

let drop table pcb =
  match pcb.remote with
  | None -> ()
  | Some remote ->
    let k = key ~local_port:pcb.local_port ~remote in
    Flowtable.remove table.conns k;
    (match table.cache with
    | Some (ck, _) when ck = k -> table.cache <- None
    | _ -> ());
    pcb.state <- Closed;
    table.s <- { table.s with freed = table.s.freed + 1 }

let connections table = Flowtable.length table.conns

let stats table = table.s

let flowtable table = table.conns

let metrics_scalars m table =
  let module Metrics = Ldlp_obs.Metrics in
  let set n v = Metrics.scalar m ("flow." ^ n) := v in
  set "lookups" table.s.lookups;
  set "cache_hits" table.s.cache_hits;
  set "table_hits" table.s.table_hits;
  set "misses" table.s.misses;
  set "allocated" table.s.allocated;
  set "freed" table.s.freed;
  Flowtable.metrics_scalars ~prefix:"flow.table" m table.conns

(* ---------- retransmission bookkeeping ---------- *)

let seg_span s =
  Bytes.length s.seg_payload
  + (if s.seg_flags land Tcp.flag_syn <> 0 then 1 else 0)
  + if s.seg_flags land Tcp.flag_fin <> 0 then 1 else 0

let track pcb ~now ~seq ~flags payload =
  if not (List.exists (fun s -> Int32.equal s.seg_seq seq) pcb.retx) then
    pcb.retx <-
      pcb.retx
      @ [
          {
            seg_seq = seq;
            seg_flags = flags;
            seg_payload = payload;
            seg_sent_at = now;
            seg_rexmits = 0;
          };
        ]

let unacked pcb = List.length pcb.retx

let oldest_unacked pcb = match pcb.retx with [] -> None | s :: _ -> Some s

type ack_class = Ack_new of float option | Ack_duplicate | Ack_old

let on_ack pcb ~now ack =
  if Tcp.seq_lt pcb.snd_una ack && Tcp.seq_leq ack pcb.snd_nxt then begin
    let acked, rest =
      List.partition
        (fun s -> Tcp.seq_leq (Tcp.seq_add s.seg_seq (seg_span s)) ack)
        pcb.retx
    in
    pcb.retx <- rest;
    pcb.snd_una <- ack;
    pcb.dupacks <- 0;
    Rto.reset_backoff pcb.rto;
    (* Karn's rule: only a segment transmitted exactly once yields an RTT
       sample (take the newest fully covered one). *)
    let sample =
      List.fold_left
        (fun acc s -> if s.seg_rexmits = 0 then Some (now -. s.seg_sent_at) else acc)
        None acked
    in
    Ack_new sample
  end
  else if Int32.equal ack pcb.snd_una then Ack_duplicate
  else Ack_old
