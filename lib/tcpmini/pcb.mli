(** Protocol control blocks and their lookup table.

    The paper's traced path notes "the single-entry PCB cache hits" on its
    fast path; this table reproduces that structure: a hash table of
    connections keyed by the (local port, remote address, remote port)
    tuple, fronted by a one-entry cache of the last connection that
    received a segment.  Statistics expose the cache hit rate so the
    fast-path behaviour is observable. *)

type state =
  | Listen
  | Syn_sent  (** Active open: SYN transmitted, awaiting SYN-ACK. *)
  | Syn_received
  | Established
  | Close_wait  (** Peer sent FIN; we still may deliver buffered data. *)
  | Closed

val state_name : state -> string

type seg = {
  seg_seq : int32;
  seg_flags : int;
  seg_payload : bytes;
  mutable seg_sent_at : float;  (** Last (re)transmission time. *)
  mutable seg_rexmits : int;  (** Retransmissions so far (0 = original). *)
}
(** A sent-but-unacknowledged segment, as the retransmission machinery
    remembers it. *)

type t = {
  local_port : int;
  mutable remote : (Ldlp_packet.Addr.Ipv4.t * int) option;
      (** None while listening. *)
  mutable state : state;
  mutable irs : int32;  (** Initial receive sequence number. *)
  mutable rcv_nxt : int32;
  mutable snd_nxt : int32;
  mutable snd_una : int32;  (** Oldest unacknowledged sequence number. *)
  mutable delayed_ack : int;
      (** Segments received since the last ACK was sent; 4.4BSD acks every
          second data segment. *)
  sockbuf : Sockbuf.t;
  rto : Rto.t;  (** Per-connection timeout estimator. *)
  mutable retx : seg list;  (** Unacknowledged segments, oldest first. *)
  mutable dupacks : int;  (** Consecutive duplicate ACKs seen. *)
  mutable fast_retx_pending : bool;
      (** Set by the input path on the third duplicate ACK; the host's
          recovery driver consumes it. *)
  mutable rtx_armed : bool;  (** A retransmission timer event is scheduled. *)
  mutable delack_armed : bool;  (** A delayed-ACK timer event is scheduled. *)
}

type table

type stats = {
  lookups : int;  (** All connection lookups. *)
  cache_hits : int;  (** Served by the one-entry cache. *)
  table_hits : int;  (** Served by the flow table behind it. *)
  misses : int;
      (** Connection-table misses (including segments that then matched a
          listener: those took the slow demultiplexing path). *)
  allocated : int;
  freed : int;
}

val create_table : unit -> table

val listen : table -> port:int -> ?hiwat:int -> unit -> t
(** Install a listening PCB; raises [Invalid_argument] if the port is
    taken. *)

val lookup :
  table -> local_port:int -> remote:Ldlp_packet.Addr.Ipv4.t * int -> t option
(** Connection lookup with the one-entry cache: an exact match first (from
    cache, then table), else a listener on [local_port]. *)

val insert_connection :
  table -> listener:t -> remote:Ldlp_packet.Addr.Ipv4.t * int -> t
(** Clone a listener into a connected PCB for [remote]. *)

val insert_active :
  table ->
  local_port:int ->
  remote:Ldlp_packet.Addr.Ipv4.t * int ->
  ?hiwat:int ->
  unit ->
  t
(** Active open: a [Syn_sent] PCB for an outgoing connection.  Raises
    [Invalid_argument] if the (port, remote) pair is taken. *)

val drop : table -> t -> unit
(** Remove a connected PCB (RST or full close). *)

val connections : table -> int

val stats : table -> stats

val flowtable : table -> (int * int32 * int, t) Ldlp_flowtable.Flowtable.t
(** The unified flow table backing the connection lookup path (for
    attaching a memory system or reading the modeled-locality stats). *)

val metrics_scalars : Ldlp_obs.Metrics.t -> table -> unit
(** Set the [flow.*] scalars (lookup split, allocation balance) and the
    [flow.table.*] scalars (modeled front-cache behaviour) on a sheet. *)

(** {1 Retransmission bookkeeping}

    Pure sequence-space accounting; the timers that drive it live in
    {!Host}. *)

val seg_span : seg -> int
(** Sequence space a segment occupies: payload bytes plus one for SYN and
    one for FIN. *)

val track : t -> now:float -> seq:int32 -> flags:int -> bytes -> unit
(** Remember a transmitted segment for retransmission (no-op if a segment
    with that sequence number is already tracked). *)

val unacked : t -> int
(** Tracked segments not yet acknowledged. *)

val oldest_unacked : t -> seg option

type ack_class =
  | Ack_new of float option
      (** Acknowledged new data; tracked segments it covers were released
          and [snd_una] advanced.  Carries an RTT sample when a covered
          segment had never been retransmitted (Karn's rule). *)
  | Ack_duplicate  (** ACK for exactly [snd_una] — a potential dup-ACK. *)
  | Ack_old  (** Outside the window; ignore. *)

val on_ack : t -> now:float -> int32 -> ack_class
(** Process an incoming ACK value against the retransmission queue.  On
    new data: releases covered segments, resets [dupacks] and the RTO
    backoff. *)
