type t = {
  mutable srtt : float;  (* seconds; negative = no sample yet *)
  mutable rttvar : float;
  mutable shift : int;  (* backoff exponent *)
}

let initial_rto = 1.0

let min_rto = 0.2

let max_rto = 60.0

let create () = { srtt = -1.0; rttvar = 0.0; shift = 0 }

let observe t sample =
  if sample >= 0.0 then
    if t.srtt < 0.0 then begin
      t.srtt <- sample;
      t.rttvar <- sample /. 2.0
    end
    else begin
      let err = sample -. t.srtt in
      t.srtt <- t.srtt +. (0.125 *. err);
      t.rttvar <- t.rttvar +. (0.25 *. (Float.abs err -. t.rttvar))
    end

let srtt t = if t.srtt < 0.0 then None else Some t.srtt

let rto t =
  let base =
    if t.srtt < 0.0 then initial_rto
    else Float.max min_rto (t.srtt +. (4.0 *. t.rttvar))
  in
  Float.min max_rto (base *. float_of_int (1 lsl min t.shift 16))

let backoff t = t.shift <- min (t.shift + 1) 16

let backoff_count t = t.shift

let reset_backoff t = t.shift <- 0
