(** Retransmission-timeout estimation: SRTT/RTTVAR smoothing (RFC 6298 /
    the 4.4BSD [tcp_xmit_timer]) plus exponential backoff.

    One instance per connection.  {!observe} feeds a round-trip sample
    (never from a retransmitted segment — Karn's rule is the caller's
    job); {!rto} is the current timeout including backoff; {!backoff}
    doubles it after a timer expiry and {!reset_backoff} clears the
    exponent when new data is acknowledged. *)

type t

val initial_rto : float
(** Timeout before any sample has been observed: 1 s. *)

val min_rto : float
(** Lower clamp on the unbacked-off timeout: 200 ms (well above the
    delayed-ACK timer, so a delayed ACK never looks like a loss). *)

val max_rto : float
(** Upper clamp including backoff: 60 s. *)

val create : unit -> t

val observe : t -> float -> unit
(** Feed one RTT sample in seconds: [srtt += (sample - srtt) / 8],
    [rttvar += (|err| - rttvar) / 4] (first sample initialises both). *)

val srtt : t -> float option
(** Smoothed RTT, if any sample has been observed. *)

val rto : t -> float
(** [clamp (srtt + 4 * rttvar) * 2^backoff] into [min_rto, max_rto]
    ([initial_rto] base before the first sample). *)

val backoff : t -> unit
(** Double the timeout (after a retransmission timer expiry). *)

val backoff_count : t -> int

val reset_backoff : t -> unit
(** New data acknowledged: the network is moving again. *)
