module Tcp = Ldlp_packet.Tcp
module Mbuf = Ldlp_buf.Mbuf

type reply = {
  dst : Ldlp_packet.Addr.Ipv4.t;
  src_port : int;
  dst_port : int;
  seq : int32;
  ack : int32;
  flags : int;
  window : int;
}

type drop_reason = [ `Bad_checksum | `Parse_failed | `No_pcb | `Bad_state ]

type outcome = {
  pcb : Pcb.t option;
  delivered : int;
  replies : reply list;
  fastpath : bool;
  dropped : drop_reason option;
}

type stats = { fastpath_hits : int; slowpath : int; acks_sent : int; drops : int }

(* Per-domain counters (Domain.DLS): a sharded data path runs one host
   group per domain, and a shared ref here would be both racy and
   misleading (counts smeared across shards).  Each domain sees exactly
   its own stack's counts; [stats]/[reset_stats] act on the calling
   domain. *)
let counters_key =
  Domain.DLS.new_key (fun () ->
      ref { fastpath_hits = 0; slowpath = 0; acks_sent = 0; drops = 0 })

let counters () = Domain.DLS.get counters_key

let stats () = !(counters ())

let reset_stats () =
  counters () := { fastpath_hits = 0; slowpath = 0; acks_sent = 0; drops = 0 }

let initial_send_seq = 1000l

let drop ?pcb reason =
  (let c = counters () in
   c := { !c with drops = !c.drops + 1 });
  { pcb; delivered = 0; replies = []; fastpath = false; dropped = Some reason }

(* The input path reads segment fields in place off the pulled-up mbuf
   (no intermediate [Tcp.header] record), so the state machine below
   takes the fields it actually uses as scalars: [seg_src_port], [seq],
   [ack] and [flags] of the arriving segment. *)

let reply_of ~src_ip ~seg_src_port (pcb : Pcb.t) ~flags =
  (let c = counters () in
   c := { !c with acks_sent = !c.acks_sent + 1 });
  {
    dst = src_ip;
    src_port = pcb.Pcb.local_port;
    dst_port = seg_src_port;
    seq = pcb.Pcb.snd_nxt;
    ack = pcb.Pcb.rcv_nxt;
    flags;
    window = Sockbuf.space pcb.Pcb.sockbuf;
  }

(* RST in answer to a segment for which no connection exists (RFC 793's
   reset generation for the CLOSED state). *)
let rst_for ~src_ip ~seg_src_port ~seq ~ack ~seg_flags ~dst_port ~payload_len =
  if seg_flags land Tcp.flag_rst <> 0 then []
  else if seg_flags land Tcp.flag_ack <> 0 then
    [
      {
        dst = src_ip;
        src_port = dst_port;
        dst_port = seg_src_port;
        seq = ack;
        ack = 0l;
        flags = Tcp.flag_rst;
        window = 0;
      };
    ]
  else
    [
      {
        dst = src_ip;
        src_port = dst_port;
        dst_port = seg_src_port;
        seq = 0l;
        ack =
          Tcp.seq_add seq
            (payload_len + if seg_flags land Tcp.flag_syn <> 0 then 1 else 0);
        flags = Tcp.flag_rst lor Tcp.flag_ack;
        window = 0;
      };
    ]

(* Run an incoming ACK value through the retransmission queue.  A pure
   ACK for [snd_una] while data is outstanding is a dup-ACK; the third in
   a row requests a fast retransmit (flagged on the PCB — the host's
   recovery driver, when timers are attached, emits the segment). *)
let process_ack pcb ~now ~ack ~seg_flags ~len =
  if seg_flags land Tcp.flag_ack <> 0 then
    match Pcb.on_ack pcb ~now ack with
    | Pcb.Ack_new sample -> Option.iter (Rto.observe pcb.Pcb.rto) sample
    | Pcb.Ack_duplicate
      when len = 0 && pcb.Pcb.retx <> []
           && seg_flags land (Tcp.flag_syn lor Tcp.flag_fin) = 0 ->
      pcb.Pcb.dupacks <- pcb.Pcb.dupacks + 1;
      if pcb.Pcb.dupacks = 3 then pcb.Pcb.fast_retx_pending <- true
    | Pcb.Ack_duplicate | Pcb.Ack_old -> ()

let established_input _table ~src_ip ~now pcb ~seg_src_port ~seq ~ack ~seg_flags
    payload =
  let len = Bytes.length payload in
  if seg_flags land Tcp.flag_rst <> 0 then begin
    Pcb.drop _table pcb;
    { pcb = Some pcb; delivered = 0; replies = []; fastpath = false; dropped = None }
  end
  else if
    (* Header prediction (the 4.4BSD fast path the paper's trace hits):
       established state, nothing but ACK/PSH set, exactly the expected
       sequence number, data present, room in the buffer. *)
    pcb.Pcb.state = Pcb.Established
    && seg_flags land lnot (Tcp.flag_ack lor Tcp.flag_psh) = 0
    && Int32.equal seq pcb.Pcb.rcv_nxt
    && len > 0
    && Sockbuf.space pcb.Pcb.sockbuf >= len
  then begin
    (let c = counters () in
   c := { !c with fastpath_hits = !c.fastpath_hits + 1 });
    process_ack pcb ~now ~ack ~seg_flags ~len;
    let accepted = Sockbuf.append pcb.Pcb.sockbuf payload in
    pcb.Pcb.rcv_nxt <- Tcp.seq_add pcb.Pcb.rcv_nxt accepted;
    pcb.Pcb.delayed_ack <- pcb.Pcb.delayed_ack + 1;
    let replies =
      if pcb.Pcb.delayed_ack >= 2 then begin
        pcb.Pcb.delayed_ack <- 0;
        [ reply_of ~src_ip ~seg_src_port pcb ~flags:Tcp.flag_ack ]
      end
      else []
    in
    { pcb = Some pcb; delivered = accepted; replies; fastpath = true; dropped = None }
  end
  else begin
    (let c = counters () in
   c := { !c with slowpath = !c.slowpath + 1 });
    process_ack pcb ~now ~ack ~seg_flags ~len;
    (* Slow path: in-order FIN, out-of-order data, window probes... *)
    let in_order = Int32.equal seq pcb.Pcb.rcv_nxt in
    let delivered =
      if in_order && len > 0 && pcb.Pcb.state = Pcb.Established then begin
        let accepted = Sockbuf.append pcb.Pcb.sockbuf payload in
        pcb.Pcb.rcv_nxt <- Tcp.seq_add pcb.Pcb.rcv_nxt accepted;
        accepted
      end
      else 0
    in
    let fin_processed =
      in_order
      && seg_flags land Tcp.flag_fin <> 0
      && pcb.Pcb.state = Pcb.Established
      && delivered = len
    in
    if fin_processed then begin
      pcb.Pcb.rcv_nxt <- Tcp.seq_add pcb.Pcb.rcv_nxt 1;
      pcb.Pcb.state <- Pcb.Close_wait
    end;
    (* The slow path acknowledges immediately — duplicate and out-of-order
       segments trigger the classic dup-ACK — but only segments that
       occupy sequence space.  A pure ACK must never be ACKed back, or two
       hosts volley acknowledgments forever. *)
    let occupies =
      len > 0
      || seg_flags land Tcp.flag_syn <> 0
      || seg_flags land Tcp.flag_fin <> 0
    in
    let replies =
      if occupies then begin
        pcb.Pcb.delayed_ack <- 0;
        [ reply_of ~src_ip ~seg_src_port pcb ~flags:Tcp.flag_ack ]
      end
      else []
    in
    { pcb = Some pcb; delivered; replies; fastpath = false; dropped = None }
  end

let segment_arrived table ~my_ip ~src_ip ~pool ?(now = 0.0) m =
  if not (Tcp.verify_checksum ~src:src_ip ~dst:my_ip m) then begin
    Mbuf.free pool m;
    drop `Bad_checksum
  end
  else begin
    let m = Mbuf.pullup pool m (min (Mbuf.length m) Tcp.header_bytes) in
    let hdr_len = min (Mbuf.length m) Tcp.header_bytes in
    let buf = Mbuf.seg_data m and boff = Mbuf.seg_off m in
    (* Same validation [Tcp.parse] performed on the copied-out header —
       including its quirk that [hdr_len] is capped at 20 bytes, so a
       segment advertising options never passes — but against the
       pulled-up bytes in place. *)
    match Tcp.check_at buf boff hdr_len with
    | Error _ ->
      Mbuf.free pool m;
      drop `Parse_failed
    | Ok _ ->
      let seg_src_port = Tcp.src_port_at buf boff in
      let dst_port = Tcp.dst_port_at buf boff in
      let seq = Tcp.seq_at buf boff in
      let ack = Tcp.ack_at buf boff in
      let seg_flags = Tcp.flags_at buf boff in
      let data_offset = Tcp.data_offset_at buf boff in
      Mbuf.adj m (min (Mbuf.length m) (data_offset * 4));
      let payload = Mbuf.to_bytes m in
      Mbuf.free pool m;
      let remote = (src_ip, seg_src_port) in
      (match Pcb.lookup table ~local_port:dst_port ~remote with
      | None ->
        let o = drop `No_pcb in
        {
          o with
          replies =
            rst_for ~src_ip ~seg_src_port ~seq ~ack ~seg_flags ~dst_port
              ~payload_len:(Bytes.length payload);
        }
      | Some pcb -> (
        match pcb.Pcb.state with
        | Pcb.Listen ->
          if
            seg_flags land Tcp.flag_syn <> 0
            && seg_flags land Tcp.flag_ack = 0
          then begin
            (let c = counters () in
   c := { !c with slowpath = !c.slowpath + 1 });
            let conn = Pcb.insert_connection table ~listener:pcb ~remote in
            conn.Pcb.irs <- seq;
            conn.Pcb.rcv_nxt <- Tcp.seq_add seq 1;
            conn.Pcb.snd_nxt <- initial_send_seq;
            conn.Pcb.snd_una <- initial_send_seq;
            let reply =
              reply_of ~src_ip ~seg_src_port conn
                ~flags:(Tcp.flag_syn lor Tcp.flag_ack)
            in
            conn.Pcb.snd_nxt <- Tcp.seq_add conn.Pcb.snd_nxt 1;
            {
              pcb = Some conn;
              delivered = 0;
              replies = [ reply ];
              fastpath = false;
              dropped = None;
            }
          end
          else begin
            let o = drop ~pcb `Bad_state in
            {
              o with
              replies =
                rst_for ~src_ip ~seg_src_port ~seq ~ack ~seg_flags ~dst_port
                  ~payload_len:(Bytes.length payload);
            }
          end
        | Pcb.Syn_received ->
          (let c = counters () in
   c := { !c with slowpath = !c.slowpath + 1 });
          if seg_flags land Tcp.flag_rst <> 0 then begin
            Pcb.drop table pcb;
            { pcb = Some pcb; delivered = 0; replies = []; fastpath = false; dropped = None }
          end
          else if
            seg_flags land Tcp.flag_ack <> 0
            && Int32.equal ack pcb.Pcb.snd_nxt
          then begin
            process_ack pcb ~now ~ack ~seg_flags ~len:(Bytes.length payload);
            pcb.Pcb.state <- Pcb.Established;
            (* The handshake ACK may carry data; reprocess it through the
               established path. *)
            if Bytes.length payload > 0 then
              established_input table ~src_ip ~now pcb ~seg_src_port ~seq ~ack
                ~seg_flags payload
            else
              { pcb = Some pcb; delivered = 0; replies = []; fastpath = false; dropped = None }
          end
          else if
            seg_flags land Tcp.flag_syn <> 0
            && seg_flags land Tcp.flag_ack = 0
            && Int32.equal seq pcb.Pcb.irs
          then begin
            (* Retransmitted SYN: our SYN-ACK was lost; repeat it with the
               original sequence number (snd_nxt already consumed it). *)
            let r =
              reply_of ~src_ip ~seg_src_port pcb
                ~flags:(Tcp.flag_syn lor Tcp.flag_ack)
            in
            {
              pcb = Some pcb;
              delivered = 0;
              replies = [ { r with seq = Tcp.seq_add pcb.Pcb.snd_nxt (-1) } ];
              fastpath = false;
              dropped = None;
            }
          end
          else drop ~pcb `Bad_state
        | Pcb.Syn_sent ->
          (let c = counters () in
   c := { !c with slowpath = !c.slowpath + 1 });
          if seg_flags land Tcp.flag_rst <> 0 then begin
            Pcb.drop table pcb;
            { pcb = Some pcb; delivered = 0; replies = []; fastpath = false; dropped = None }
          end
          else if
            seg_flags land Tcp.flag_syn <> 0
            && seg_flags land Tcp.flag_ack <> 0
            && Int32.equal ack pcb.Pcb.snd_nxt
          then begin
            (* Active open completes: record the server's ISN and ack it. *)
            process_ack pcb ~now ~ack ~seg_flags ~len:0;
            pcb.Pcb.irs <- seq;
            pcb.Pcb.rcv_nxt <- Tcp.seq_add seq 1;
            pcb.Pcb.state <- Pcb.Established;
            {
              pcb = Some pcb;
              delivered = 0;
              replies = [ reply_of ~src_ip ~seg_src_port pcb ~flags:Tcp.flag_ack ];
              fastpath = false;
              dropped = None;
            }
          end
          else drop ~pcb `Bad_state
        | Pcb.Established | Pcb.Close_wait ->
          established_input table ~src_ip ~now pcb ~seg_src_port ~seq ~ack
            ~seg_flags payload
        | Pcb.Closed -> drop ~pcb `Bad_state))
  end
