(** TCP receive processing — the paper's Table 2 path as an executable
    state machine.

    Follows the structure of 4.4BSD [tcp_input] that the paper traces:
    checksum verification, PCB lookup through the single-entry cache,
    a header-prediction fast path for in-order established-state data, and
    the 4.4BSD acknowledgment policy of one ACK for every second data
    segment (which is exactly the case the paper measures: "this TCP
    implementation sends an ACK for every second data packet").

    Sequence-space handling is deliberately minimal: out-of-order segments
    are dropped and re-acknowledged (no reassembly queue), which is enough
    for the locality experiments and keeps the state machine fully
    testable. *)

type reply = {
  dst : Ldlp_packet.Addr.Ipv4.t;
  src_port : int;  (** Our port. *)
  dst_port : int;
  seq : int32;
  ack : int32;
  flags : int;
  window : int;
}

type drop_reason =
  [ `Bad_checksum
  | `Parse_failed
  | `No_pcb  (** RST generated. *)
  | `Bad_state ]

type outcome = {
  pcb : Pcb.t option;
  delivered : int;  (** Payload bytes appended to the socket buffer. *)
  replies : reply list;
  fastpath : bool;  (** Whether header prediction took the segment. *)
  dropped : drop_reason option;
}

val initial_send_seq : int32
(** ISS used for SYN-ACKs (fixed — no clock dependence, reproducible). *)

val segment_arrived :
  Pcb.table ->
  my_ip:Ldlp_packet.Addr.Ipv4.t ->
  src_ip:Ldlp_packet.Addr.Ipv4.t ->
  pool:Ldlp_buf.Pool.t ->
  ?now:float ->
  Ldlp_buf.Mbuf.t ->
  outcome
(** Process one TCP segment held in an mbuf chain (IP header already
    stripped).  The chain is consumed (freed).

    [now] (default 0) is the arrival time used by the loss-recovery
    bookkeeping: incoming ACK values run through {!Pcb.on_ack} (releasing
    tracked segments, feeding the {!Rto} estimator under Karn's rule, and
    flagging a fast retransmit on the PCB after three duplicate ACKs), and
    a retransmitted SYN in [Syn_received] gets its SYN-ACK repeated.  With
    no tracked segments (no timers attached — see {!Host.attach_timers})
    all of this is inert. *)

type stats = { fastpath_hits : int; slowpath : int; acks_sent : int; drops : int }

val stats : unit -> stats
(** Per-domain counters (reset with {!reset_stats}) — each domain of a
    sharded data path sees only its own stack's counts; coarse but handy
    for examples and tests. *)

val reset_stats : unit -> unit
