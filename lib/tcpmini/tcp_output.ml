module Tcp = Ldlp_packet.Tcp

let build ~src ~dst ~src_port ~dst_port ~seq ~ack ~flags ~window
    ?(payload = Bytes.empty) () =
  let len = Tcp.header_bytes + Bytes.length payload in
  let seg = Bytes.create len in
  Tcp.write ~src_port ~dst_port ~seq ~ack ~data_offset:5 ~flags
    ~window:(min window 0xFFFF) ~urgent:0 seg 0;
  Bytes.blit payload 0 seg Tcp.header_bytes (Bytes.length payload);
  Tcp.store_checksum ~src ~dst seg 0 len;
  seg
