type config = {
  flows : int;
  sources : int;
  alpha : float;
  mean_train : float;
}

let default ~flows = { flows; sources = 256; alpha = 1.1; mean_train = 8.0 }

let validate c =
  if c.flows <= 0 then invalid_arg "Flowmix: flows must be positive";
  if c.sources <= 0 then invalid_arg "Flowmix: sources must be positive";
  if c.alpha <= 0.0 then invalid_arg "Flowmix: alpha must be positive";
  if c.mean_train < 1.0 then invalid_arg "Flowmix: mean_train must be >= 1"

type src_state = { mutable flow : int; mutable left : int }

type t = {
  cfg : config;
  rng : Ldlp_sim.Rng.t;
  cdf : float array; (* cumulative Zipf weights, cdf.(flows - 1) = 1 *)
  srcs : src_state array;
  mutable cursor : int;
}

let create ~rng cfg =
  validate cfg;
  let cdf = Array.make cfg.flows 0.0 in
  let acc = ref 0.0 in
  for i = 0 to cfg.flows - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) cfg.alpha);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to cfg.flows - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  {
    cfg;
    rng;
    cdf;
    srcs = Array.init cfg.sources (fun _ -> { flow = 0; left = 0 });
    cursor = 0;
  }

let config t = t.cfg

(* First index with cdf.(i) >= u: popular flows get low ranks. *)
let zipf t =
  let u = Ldlp_sim.Rng.unit_float t.rng in
  let lo = ref 0 and hi = ref (t.cfg.flows - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let next t =
  let src = t.srcs.(t.cursor) in
  t.cursor <- (t.cursor + 1) mod t.cfg.sources;
  if src.left <= 0 then begin
    src.flow <- zipf t;
    src.left <- Ldlp_sim.Rng.geometric t.rng ~p:(1.0 /. t.cfg.mean_train)
  end;
  src.left <- src.left - 1;
  src.flow

let stream t n = Array.init n (fun _ -> next t)
