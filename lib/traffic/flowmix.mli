(** Destination-locality workload: flow-key arrival streams.

    Models the reference pattern a flow-state lookup path sees (Jain,
    DEC-TR-592): each of [sources] concurrent senders emits trains of
    packets for one destination flow (geometric train lengths, the
    packet-train analogue of the Pareto ON periods in {!Onoff}), flows
    are drawn with Zipf popularity, and the per-source trains are
    interleaved round-robin into one arrival order — so consecutive
    packets of the same flow land [sources] positions apart and the
    arrival order has far worse temporal locality than the traffic
    itself.  That gap is exactly what LDLP batch-sorted lookup recovers
    ([Ldlp_flowtable.Flowtable.lookup_batch]).

    Deterministic: the stream is a pure function of the {!Ldlp_sim.Rng}
    stream and the config. *)

type config = {
  flows : int;  (** Distinct destination flows (Zipf support). *)
  sources : int;  (** Concurrent senders interleaved round-robin. *)
  alpha : float;  (** Zipf exponent over flow popularity ([> 0]). *)
  mean_train : float;  (** Mean packets per train ([>= 1]). *)
}

val default : flows:int -> config
(** 256 sources, Zipf exponent 1.1, mean train length 8. *)

type t

val create : rng:Ldlp_sim.Rng.t -> config -> t

val config : t -> config

val next : t -> int
(** Next flow key in arrival order, in [\[0, flows)]. *)

val stream : t -> int -> int array
(** [stream t n] is the next [n] arrivals. *)
