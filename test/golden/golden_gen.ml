(* Golden-figure generator: writes the canonical quick-fidelity text
   rendering of every table and figure to <name>.out in the current
   directory.  The dune rules in this directory diff each .out against the
   committed <name>.expected snapshot; `make promote` (dune promote)
   updates the snapshots after an intentional change.

   Everything here must be deterministic across hosts: fixed seed, quick
   fidelity, and domains = 1 so the sweep engine takes the sequential
   path (the parallel path is byte-identical by selftest, but pinning one
   domain keeps the goldens independent of host core count). *)

let seed = 1996

let domains = 1

let params = Ldlp_model.Params.quick

let write name s =
  Out_channel.with_open_bin (name ^ ".out") (fun oc ->
      Out_channel.output_string oc s;
      Out_channel.output_char oc '\n')

let blocking_report () =
  let p = Ldlp_model.Params.paper in
  let stack =
    {
      Ldlp_core.Blocking.layer_code_bytes =
        List.init p.Ldlp_model.Params.layers (fun _ ->
            p.Ldlp_model.Params.layer_code_bytes);
      layer_data_bytes =
        List.init p.Ldlp_model.Params.layers (fun _ ->
            p.Ldlp_model.Params.layer_data_bytes);
      msg_bytes = p.Ldlp_model.Params.msg_bytes;
      cycles_per_msg =
        p.Ldlp_model.Params.layers
        * Ldlp_model.Params.cycles_per_layer p
            ~msg_bytes:p.Ldlp_model.Params.msg_bytes;
    }
  in
  Ldlp_report.Report.blocking
    (Ldlp_core.Blocking.recommend Ldlp_core.Blocking.paper_machine stack)

let () =
  let module F = Ldlp_model.Figures in
  let module R = Ldlp_report.Report in
  write "table1" (R.table1 (F.table1 ~seed ()));
  write "table3" (R.table3 (F.table3 ~seed ()));
  (let phases, funcs = F.figure1 ~seed () in
   write "fig1" (R.figure1 phases funcs));
  (let points = F.rate_sweep ~domains ~params ~seed () in
   write "fig5" (R.fig5 points);
   write "fig6" (R.fig6 points));
  write "fig7" (R.fig7 (F.clock_sweep ~domains ~params ~seed ()));
  write "fig8" (R.fig8 (F.fig8 ()));
  write "blocking" (blocking_report ());
  write "ablation_batch" (R.ablation_batch (F.ablation_batch ~domains ~params ~seed ()));
  write "ablation_density"
    (R.ablation_density (F.ablation_density ~domains ~params ~seed ()));
  write "ablation_linesize"
    (R.ablation_linesize (F.ablation_linesize ~domains ~params ~seed ()));
  write "ablation_dilution" (R.ablation_dilution (F.ablation_dilution ()));
  write "ablation_relayout" (R.ablation_relayout (F.ablation_relayout ()));
  write "ablation_associativity"
    (R.ablation_associativity (F.ablation_associativity ~domains ~params ~seed ()));
  write "ablation_prefetch"
    (R.ablation_prefetch (F.ablation_prefetch ~domains ~params ~seed ()));
  write "ablation_unified"
    (R.ablation_unified (F.ablation_unified ~domains ~params ~seed ()));
  write "ablation_layout"
    (R.ablation_layout (F.ablation_layout ~domains ~params ~seed ()));
  write "txside" (R.extension_txside (F.extension_txside ~domains ~params ~seed ()));
  write "ilp" (R.comparison_ilp (F.comparison_ilp ~domains ~params ~seed ()));
  write "goal" (R.extension_goal (F.extension_goal ~domains ~seed ()));
  write "granularity"
    (R.ablation_granularity (F.ablation_granularity ~domains ~seed ()));
  write "tcpstack" (R.extension_tcp_stack (F.extension_tcp_stack ~domains ~seed ()));
  write "stats" (R.observability ~domains ~params ~seed ());
  write "soak"
    (Ldlp_soak.Soak.render
       (Ldlp_soak.Soak.run_all ~domains
          (Ldlp_soak.Soak.scenarios ~seed ~count:6)));
  (let module Mesh = Ldlp_mesh.Mesh in
   (* Small enough to run in milliseconds, large enough that relays span
      several hops and the chaos plan actually drops/reorders frames. *)
   let cfg = Mesh.config ~hosts:12 ~degree:3 ~seed ~broadcasts:6 () in
   let pristine = Mesh.compare_spread ~domains cfg in
   let chaos =
     Mesh.compare_spread ~domains { cfg with Mesh.plan = Mesh.chaos_plan }
   in
   (* The storm rows go through the sharded engine at shards = 1: the
      figure is the regression pin that the sharded path reproduces the
      pre-sharding storm byte for byte. *)
   let storms =
     List.map
       (fun wiring ->
         (Mesh.run_storm_sharded ~wiring ~shards:1 cfg).Mesh.ss_storm)
       Mesh.all_wirings
   in
   write "mesh" (Mesh.render cfg ~pristine ~chaos ~storms));
  (* Fault plans: the one-line describe forms are part of every
     golden-snapshotted table, so pin them directly over a spread of
     link plans, host lifecycles and a seeded lifecycle draw. *)
  (let module Plan = Ldlp_fault.Plan in
   let link_plans =
     [
       ("none", Plan.none);
       ("drop only", Plan.v ~drop:0.05 ());
       ( "chaos",
         Plan.v ~drop:0.05 ~dup:0.02 ~corrupt:0.01 ~reorder:0.1
           ~reorder_window:4 ~jitter:1e-4 () );
       ("down episode", Plan.v ~down:[ (0.01, 0.02); (0.05, 0.055) ] ());
     ]
   in
   let hosts =
     [
       ("immortal", Plan.host_none);
       ("one crash", Plan.host_v ~crash:[ (0.1, 0.15) ] ());
       ("flapping", Plan.host_v ~crash:[ (0.01, 0.02); (0.03, 0.05) ] ());
     ]
   in
   let b = Buffer.create 512 in
   Buffer.add_string b "Fault plans — describe forms\n";
   List.iter
     (fun (tag, p) ->
       Buffer.add_string b (Printf.sprintf "  link %-13s %s\n" tag (Plan.describe p)))
     link_plans;
   List.iter
     (fun (tag, h) ->
       Buffer.add_string b
         (Printf.sprintf "  host %-13s %s\n" tag (Plan.describe_host h)))
     hosts;
   let lc =
     Plan.lifecycle ~victims:0.5 ~episodes:2 ~min_outage:0.002
       ~mean_outage:0.01 ~flap:0.25 ~seed ~hosts:16 ~horizon:0.02 ()
   in
   Buffer.add_string b
     (Printf.sprintf "  lifecycle (seed %d, 16 hosts): %s\n" seed
        (Plan.describe_lifecycle lc));
   Array.iteri
     (fun i h ->
       if not (Plan.host_is_none h) then
         Buffer.add_string b
           (Printf.sprintf "    host %2d: %s\n" i (Plan.describe_host h)))
     lc;
   write "plans" (String.trim (Buffer.contents b)));
  (* Crash/restart recovery: the storm-under-crashes figure. *)
  (let module Mesh = Ldlp_mesh.Mesh in
   let lifecycle =
     Ldlp_fault.Plan.lifecycle ~victims:1.0 ~episodes:2 ~min_outage:0.002
       ~mean_outage:0.01 ~seed:7 ~hosts:16 ~horizon:0.02 ()
   in
   let cfg = Mesh.config ~hosts:16 ~degree:3 ~seed ~lifecycle () in
   let storms = Mesh.compare_storm ~domains ~calls_per_pair:6 cfg in
   write "recovery" (String.trim (Mesh.render_recovery cfg ~storms)));
  (* Flow-table locality: the Jain-style scheme comparison at the two
     quick-fidelity points (the 1M-flow point lives in `bench --flows`). *)
  (let module Study = Ldlp_flowtable.Study in
   let config = Study.quick in
   let rows =
     List.concat_map
       (fun flows -> Study.run ~config ~flows ~seed ())
       [ 10_000; 100_000 ]
   in
   write "flows" (String.trim (Study.render ~config ~rows ~seed ())));
  (* Sharded data path: placement plan + fixed-seed replays. *)
  let shards_fig = Ldlp_shard.Demo.render ~seed in
  let shards_fig =
    (* [write] adds the final newline itself. *)
    if String.length shards_fig > 0
       && shards_fig.[String.length shards_fig - 1] = '\n'
    then String.sub shards_fig 0 (String.length shards_fig - 1)
    else shards_fig
  in
  write "shards" shards_fig
