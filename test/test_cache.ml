(* Tests for the cache/memory-system simulator. *)

open Ldlp_cache

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* ---------- Config ---------- *)

let test_config_defaults () =
  let c = Config.paper_default in
  checki "lines" 256 (Config.lines c);
  checki "sets" 256 (Config.sets c);
  checki "line of addr" 3 (Config.line_of_addr c 96);
  checki "range lines" 2 (Config.lines_in_range c ~addr:30 ~len:4);
  checki "empty range" 0 (Config.lines_in_range c ~addr:0 ~len:0)

let test_config_validation () =
  Alcotest.check_raises "non-pow2 size"
    (Invalid_argument "Config.v: size_bytes must be a power of two") (fun () ->
      ignore (Config.v ~size_bytes:1000 ()));
  Alcotest.check_raises "non-pow2 line"
    (Invalid_argument "Config.v: line_bytes must be a power of two") (fun () ->
      ignore (Config.v ~line_bytes:30 ()));
  Alcotest.check_raises "bad assoc"
    (Invalid_argument "Config.v: associativity must be >= 1") (fun () ->
      ignore (Config.v ~associativity:0 ()))

(* ---------- Cache ---------- *)

let test_direct_mapped_hit_miss () =
  let c = Cache.create (Config.v ()) in
  check "cold miss" false (Cache.access c 0);
  check "hit" true (Cache.access c 0);
  check "same line hit" true (Cache.access c 31);
  check "next line miss" false (Cache.access c 32);
  checki "hits" 2 (Cache.hits c);
  checki "misses" 2 (Cache.misses c)

let test_direct_mapped_conflict () =
  let c = Cache.create (Config.v ()) in
  (* 8 KB direct-mapped: addresses 8192 apart conflict. *)
  check "miss a" false (Cache.access c 0);
  check "miss b evicts a" false (Cache.access c 8192);
  check "a evicted" false (Cache.access c 0)

let test_set_associative_lru () =
  let c = Cache.create (Config.v ~associativity:2 ()) in
  (* Two-way: two conflicting lines coexist; a third evicts the LRU. *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 8192);
  check "both resident (way 1)" true (Cache.access c 0);
  check "both resident (way 2)" true (Cache.access c 8192);
  (* Access order makes line 0 MRU; inserting a third conflicting line
     evicts 8192. *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 16384);
  check "MRU survived" true (Cache.access c 0);
  check "LRU evicted" false (Cache.access c 8192)

(* LRU order, exhaustively: hit the line in each way position, then check
   the eviction order.  Addresses 8192 apart land in set 0 for every
   associativity used here.  [Cache.resident] is non-mutating, so it can
   assert contents without perturbing the recency order. *)

let test_lru_two_way_order () =
  let c = Cache.create (Config.v ~associativity:2 ()) in
  let a = 0 and b = 8192 and e = 16384 in
  ignore (Cache.access c a);
  ignore (Cache.access c b);
  (* Hit in way 1 (a is LRU): promotes a to MRU. *)
  check "hit way 1" true (Cache.access c a);
  (* Hit in way 0 (a is now MRU): order must be unchanged. *)
  check "hit way 0" true (Cache.access c a);
  (* b is LRU: a third conflicting line evicts b, not a. *)
  ignore (Cache.access c e);
  check "MRU a survives" true (Cache.resident c a);
  check "LRU b evicted" false (Cache.resident c b);
  check "new line resident" true (Cache.resident c e)

let test_lru_four_way_order () =
  let c = Cache.create (Config.v ~associativity:4 ()) in
  let a = 0 and b = 8192 and d = 16384 and e = 24576 in
  List.iter (fun x -> ignore (Cache.access c x)) [ a; b; d; e ];
  (* Recency (MRU first): e d b a.  Hit each way position in turn. *)
  check "hit way 3 (a)" true (Cache.access c a);  (* a e d b *)
  check "hit way 2 (d)" true (Cache.access c d);  (* d a e b *)
  check "hit way 1 (a)" true (Cache.access c a);  (* a d e b *)
  check "hit way 0 (a)" true (Cache.access c a);  (* a d e b *)
  checki "4 hits so far" 4 (Cache.hits c);
  (* Eviction order is now b, then e, then d. *)
  let f = 32768 and g = 40960 in
  check "5th line misses" false (Cache.access c f);  (* evicts b *)
  check "b evicted first" false (Cache.resident c b);
  check "e still resident" true (Cache.resident c e);
  ignore (Cache.access c g);  (* evicts e *)
  check "e evicted second" false (Cache.resident c e);
  check "d still resident" true (Cache.resident c d);
  check "a still resident" true (Cache.resident c a);
  check "f still resident" true (Cache.resident c f)

let test_touch_range () =
  let c = Cache.create (Config.v ()) in
  checki "cold range misses" 3 (Cache.touch_range c ~addr:10 ~len:80);
  checki "warm range hits" 0 (Cache.touch_range c ~addr:10 ~len:80);
  checki "empty range" 0 (Cache.touch_range c ~addr:0 ~len:0)

let test_flush_occupancy () =
  let c = Cache.create (Config.v ()) in
  ignore (Cache.touch_range c ~addr:0 ~len:1024);
  checki "occupancy" 32 (Cache.occupancy c);
  check "resident" true (Cache.resident c 512);
  Cache.flush c;
  checki "flushed" 0 (Cache.occupancy c);
  check "not resident" false (Cache.resident c 512)

let prop_cache_fits_capacity =
  QCheck.Test.make ~name:"occupancy never exceeds line count" ~count:50
    QCheck.(list (int_bound 1_000_000))
    (fun addrs ->
      let c = Cache.create (Config.v ()) in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      Cache.occupancy c <= Config.lines (Cache.config c))

let prop_cache_second_access_hits =
  QCheck.Test.make ~name:"immediate re-access always hits" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun addr ->
      let c = Cache.create (Config.v ~associativity:4 ()) in
      ignore (Cache.access c addr);
      Cache.access c addr)

(* ---------- Memsys ---------- *)

let test_memsys_stall_accounting () =
  let m = Memsys.create () in
  Memsys.fetch_code m ~addr:0 ~len:6144;
  let c = Memsys.counters m in
  checki "icache misses" 192 c.Memsys.icache_misses;
  checki "stalls" (192 * 20) c.Memsys.stall_cycles;
  Memsys.fetch_code m ~addr:0 ~len:6144;
  let c = Memsys.counters m in
  checki "warm: no more misses" 192 c.Memsys.icache_misses

let test_memsys_write_no_stall () =
  let m = Memsys.create () in
  Memsys.write_data m ~addr:0 ~len:64;
  let c = Memsys.counters m in
  checki "write misses counted" 2 c.Memsys.write_misses;
  checki "no stall for writes" 0 c.Memsys.stall_cycles

let test_memsys_execute_and_time () =
  let m = Memsys.create ~clock_hz:100e6 () in
  Memsys.execute m 1000;
  checki "cycles" 1000 (Memsys.cycles m);
  Alcotest.(check (float 1e-12)) "seconds" 1e-5 (Memsys.seconds m)

let test_memsys_take_counters () =
  let m = Memsys.create () in
  Memsys.read_data m ~addr:0 ~len:32;
  let c1 = Memsys.take_counters m in
  checki "first take" 1 c1.Memsys.dcache_misses;
  let c2 = Memsys.counters m in
  checki "reset" 0 c2.Memsys.dcache_misses;
  (* Cache content preserved: same line still hits. *)
  Memsys.read_data m ~addr:0 ~len:32;
  let c3 = Memsys.counters m in
  checki "still warm" 0 c3.Memsys.dcache_misses

let test_memsys_cold () =
  let m = Memsys.create () in
  Memsys.read_data m ~addr:0 ~len:32;
  Memsys.cold m;
  ignore (Memsys.take_counters m);
  Memsys.read_data m ~addr:0 ~len:32;
  checki "miss after cold" 1 (Memsys.counters m).Memsys.dcache_misses

let test_memsys_unified () =
  let m =
    Memsys.create
      ~icache:(Config.v ~size_bytes:16384 ())
      ~unified:true ()
  in
  (* Code and data share the cache: a data read can evict code. *)
  Memsys.fetch_code m ~addr:0 ~len:32;
  Memsys.read_data m ~addr:16384 ~len:32 (* conflicts with addr 0 *);
  ignore (Memsys.take_counters m);
  Memsys.fetch_code m ~addr:0 ~len:32;
  checki "data evicted code" 1 (Memsys.counters m).Memsys.icache_misses;
  (* Split caches: no such interference. *)
  let s = Memsys.create () in
  Memsys.fetch_code s ~addr:0 ~len:32;
  Memsys.read_data s ~addr:8192 ~len:32;
  ignore (Memsys.take_counters s);
  Memsys.fetch_code s ~addr:0 ~len:32;
  checki "split unaffected" 0 (Memsys.counters s).Memsys.icache_misses

let test_memsys_prefetch () =
  let full = Memsys.create () in
  let half = Memsys.create ~prefetch_discount:0.5 () in
  Memsys.fetch_code full ~addr:0 ~len:6144;
  Memsys.fetch_code half ~addr:0 ~len:6144;
  let cf = Memsys.counters full and ch = Memsys.counters half in
  checki "same misses" cf.Memsys.icache_misses ch.Memsys.icache_misses;
  (* 192 misses: full = 192*20; half = 20*(1 + 0.5*191) = 1930. *)
  checki "full stall" 3840 cf.Memsys.stall_cycles;
  checki "discounted stall" 1930 ch.Memsys.stall_cycles;
  check "invalid discount rejected" true
    (try
       ignore (Memsys.create ~prefetch_discount:1.5 ());
       false
     with Invalid_argument _ -> true)

(* ---------- Layout ---------- *)

let test_layout_sequential () =
  let l = Layout.sequential ~line_bytes:32 () in
  let a = Layout.alloc l 100 in
  let b = Layout.alloc l 100 in
  checki "first at zero" 0 a.Layout.base;
  checki "rounded to line" 128 a.Layout.len;
  checki "packed" 128 b.Layout.base;
  check "contains" true (Layout.contains a 64);
  check "not contains" false (Layout.contains a 128)

let test_layout_sequential_gap () =
  let l = Layout.sequential ~line_bytes:32 ~gap_bytes:32 () in
  let a = Layout.alloc l 32 in
  let b = Layout.alloc l 32 in
  checki "gap respected" (a.Layout.base + 64) b.Layout.base

let prop_layout_random_aligned =
  QCheck.Test.make ~name:"random layout line-aligned, in-space" ~count:200
    QCheck.(int_range 1 10000)
    (fun len ->
      let rng = Ldlp_sim.Rng.create ~seed:11 in
      let l = Layout.random ~rng ~line_bytes:32 ~space_bytes:(1 lsl 20) () in
      let r = Layout.alloc l len in
      r.Layout.base mod 32 = 0
      && r.Layout.base >= 0
      && r.Layout.base + r.Layout.len <= 1 lsl 20)

(* ---------- Working_set ---------- *)

let test_working_set_basic () =
  let ws = Working_set.create () in
  Working_set.touch ws ~addr:0 ~len:10;
  Working_set.touch ws ~addr:100 ~len:10;
  checki "bytes" 20 (Working_set.touched_bytes ws);
  checki "lines 32" 2 (Working_set.lines ws ~line_bytes:32);
  checki "bytes in lines" 64 (Working_set.bytes_in_lines ws ~line_bytes:32)

let test_working_set_merge_adjacent () =
  let ws = Working_set.create () in
  Working_set.touch ws ~addr:0 ~len:10;
  Working_set.touch ws ~addr:10 ~len:10;
  Working_set.touch ws ~addr:5 ~len:10;
  checki "merged bytes" 20 (Working_set.touched_bytes ws);
  checki "one line" 1 (Working_set.lines ws ~line_bytes:32)

let test_working_set_shared_line () =
  let ws = Working_set.create () in
  (* Two intervals in the same 32-byte line must count one line. *)
  Working_set.touch ws ~addr:2 ~len:4;
  Working_set.touch ws ~addr:20 ~len:4;
  checki "one shared line" 1 (Working_set.lines ws ~line_bytes:32);
  checki "two 8-byte lines" 2 (Working_set.lines ws ~line_bytes:8)

let test_working_set_union () =
  let a = Working_set.create () and b = Working_set.create () in
  Working_set.touch a ~addr:0 ~len:16;
  Working_set.touch b ~addr:8 ~len:16;
  let u = Working_set.union a b in
  checki "union bytes" 24 (Working_set.touched_bytes u);
  (* Union does not mutate its inputs' observable content. *)
  checki "a unchanged" 16 (Working_set.touched_bytes a);
  checki "b unchanged" 16 (Working_set.touched_bytes b)

(* Reference implementation on byte sets. *)
let naive_lines touches line_bytes =
  let module S = Set.Make (Int) in
  let s =
    List.fold_left
      (fun s (addr, len) ->
        let rec go s i = if i >= addr + len then s else go (S.add i s) (i + 1) in
        go s addr)
      S.empty touches
  in
  S.fold (fun b acc -> S.add (b / line_bytes) acc) s S.empty |> S.cardinal

let prop_working_set_matches_naive =
  QCheck.Test.make ~name:"working set lines match naive byte-set count"
    ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_bound 2000) (int_range 1 100)))
    (fun touches ->
      let ws = Working_set.create () in
      List.iter (fun (addr, len) -> Working_set.touch ws ~addr ~len) touches;
      List.for_all
        (fun lb -> Working_set.lines ws ~line_bytes:lb = naive_lines touches lb)
        [ 4; 8; 16; 32; 64 ])

let prop_working_set_bytes_match_naive =
  QCheck.Test.make ~name:"touched bytes match naive byte-set count" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_bound 2000) (int_range 1 100)))
    (fun touches ->
      let ws = Working_set.create () in
      List.iter (fun (addr, len) -> Working_set.touch ws ~addr ~len) touches;
      Working_set.touched_bytes ws = naive_lines touches 1)

let suite =
  [
    Alcotest.test_case "config defaults" `Quick test_config_defaults;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "direct-mapped hit/miss" `Quick test_direct_mapped_hit_miss;
    Alcotest.test_case "direct-mapped conflict" `Quick test_direct_mapped_conflict;
    Alcotest.test_case "set-associative LRU" `Quick test_set_associative_lru;
    Alcotest.test_case "2-way LRU order" `Quick test_lru_two_way_order;
    Alcotest.test_case "4-way LRU order" `Quick test_lru_four_way_order;
    Alcotest.test_case "touch range" `Quick test_touch_range;
    Alcotest.test_case "flush/occupancy" `Quick test_flush_occupancy;
    QCheck_alcotest.to_alcotest prop_cache_fits_capacity;
    QCheck_alcotest.to_alcotest prop_cache_second_access_hits;
    Alcotest.test_case "memsys stalls" `Quick test_memsys_stall_accounting;
    Alcotest.test_case "memsys writes" `Quick test_memsys_write_no_stall;
    Alcotest.test_case "memsys execute/time" `Quick test_memsys_execute_and_time;
    Alcotest.test_case "memsys take counters" `Quick test_memsys_take_counters;
    Alcotest.test_case "memsys cold" `Quick test_memsys_cold;
    Alcotest.test_case "memsys unified" `Quick test_memsys_unified;
    Alcotest.test_case "memsys prefetch" `Quick test_memsys_prefetch;
    Alcotest.test_case "layout sequential" `Quick test_layout_sequential;
    Alcotest.test_case "layout gap" `Quick test_layout_sequential_gap;
    QCheck_alcotest.to_alcotest prop_layout_random_aligned;
    Alcotest.test_case "working set basic" `Quick test_working_set_basic;
    Alcotest.test_case "working set merge" `Quick test_working_set_merge_adjacent;
    Alcotest.test_case "working set shared line" `Quick test_working_set_shared_line;
    Alcotest.test_case "working set union" `Quick test_working_set_union;
    QCheck_alcotest.to_alcotest prop_working_set_matches_naive;
    QCheck_alcotest.to_alcotest prop_working_set_bytes_match_naive;
  ]
