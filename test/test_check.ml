(* Tests for the differential-oracle subsystem (lib/check): the naive LRU
   cache oracle vs the production cache, the scheduler-equivalence oracle,
   and the LDLP_CHECK runtime invariants. *)

open Ldlp_check

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* ---------- Cache_oracle: reference semantics ---------- *)

let tiny_cfg ~assoc =
  (* 4 sets of [assoc] ways, 16-byte lines: aliasing is easy to hit. *)
  Ldlp_cache.Config.v
    ~size_bytes:(4 * assoc * 16)
    ~line_bytes:16 ~associativity:assoc ()

let test_oracle_lru_eviction () =
  let o = Cache_oracle.create (tiny_cfg ~assoc:2) in
  (* Three lines aliasing into set 0 of a 2-way cache: 0, 4, 8. *)
  check "miss 0" false (Cache_oracle.access_line o 0);
  check "miss 4" false (Cache_oracle.access_line o 4);
  check "hit 0" true (Cache_oracle.access_line o 0);
  (* LRU is now 4; installing 8 must evict it, not 0. *)
  check "miss 8" false (Cache_oracle.access_line o 8);
  check "0 survives" true (Cache_oracle.access_line o 0);
  check "4 evicted" false (Cache_oracle.access_line o 4);
  checki "hits" 2 (Cache_oracle.hits o);
  checki "misses" 4 (Cache_oracle.misses o)

let test_oracle_flush_and_occupancy () =
  let o = Cache_oracle.create (tiny_cfg ~assoc:2) in
  ignore (Cache_oracle.touch_range o ~addr:0 ~len:64);
  checki "four lines resident" 4 (Cache_oracle.occupancy o);
  Alcotest.(check (list int))
    "resident lines" [ 0; 1; 2; 3 ]
    (Cache_oracle.resident_lines o);
  check "resident probe" true (Cache_oracle.resident o 17);
  Cache_oracle.flush o;
  checki "flushed" 0 (Cache_oracle.occupancy o);
  check "gone" false (Cache_oracle.resident o 17)

(* ---------- Cache_oracle: differential replay ---------- *)

(* The acceptance bar: >= 10k-step random streams over direct-mapped,
   2-way and 4-way paper-sized configs, zero divergence. *)
let differential_config name cfg () =
  let rng = Ldlp_sim.Rng.create ~seed:2024 in
  let hot_lines = 3 * Ldlp_cache.Config.lines cfg in
  let ops = Cache_oracle.random_ops ~rng ~hot_lines 10_000 in
  match Cache_oracle.differential cfg ops with
  | Ok n -> checki (name ^ ": all steps replayed") 10_000 n
  | Error d ->
    Alcotest.failf "%s diverged: %a" name Cache_oracle.pp_divergence d

let test_differential_direct =
  differential_config "direct-mapped" Ldlp_cache.Config.paper_default

let test_differential_2way =
  differential_config "2-way"
    (Ldlp_cache.Config.v ~size_bytes:8192 ~line_bytes:32 ~associativity:2 ())

let test_differential_4way =
  differential_config "4-way"
    (Ldlp_cache.Config.v ~size_bytes:8192 ~line_bytes:32 ~associativity:4 ())

let prop_differential_random_configs =
  QCheck.Test.make ~name:"cache differential holds on random configs/streams"
    ~count:30
    QCheck.(pair (int_bound 10_000) (int_bound 2))
    (fun (seed, assoc_exp) ->
      let cfg =
        Ldlp_cache.Config.v ~size_bytes:2048 ~line_bytes:16
          ~associativity:(1 lsl assoc_exp) ()
      in
      let rng = Ldlp_sim.Rng.create ~seed in
      let hot_lines = 3 * Ldlp_cache.Config.lines cfg in
      let ops = Cache_oracle.random_ops ~rng ~hot_lines 800 in
      match Cache_oracle.differential ~state_every:16 cfg ops with
      | Ok _ -> true
      | Error d ->
        QCheck.Test.fail_reportf "diverged: %a" Cache_oracle.pp_divergence d)

let test_differential_detects_divergence () =
  (* Sanity that the comparison is not vacuous: replay the same stream
     against deliberately mismatched geometries and expect disagreement. *)
  let subject =
    Ldlp_cache.Cache.create
      (Ldlp_cache.Config.v ~size_bytes:512 ~line_bytes:16 ~associativity:2 ())
  in
  let oracle =
    Cache_oracle.create
      (Ldlp_cache.Config.v ~size_bytes:512 ~line_bytes:16 ~associativity:1 ())
  in
  let rng = Ldlp_sim.Rng.create ~seed:7 in
  let diverged = ref false in
  for _ = 1 to 2000 do
    let line = Ldlp_sim.Rng.int rng 96 in
    let s = Ldlp_cache.Cache.access_line subject line in
    let o = Cache_oracle.access_line oracle line in
    if s <> o then diverged := true
  done;
  check "assoc 2 vs assoc 1 observably differ" true !diverged

(* ---------- Sched_oracle ---------- *)

let paper_spec =
  {
    Sched_oracle.layers =
      [ Sched_oracle.Pass; Pass; Consume_every 3; Reply_every 2; Pass ];
    msgs = List.init 60 (fun i -> (i mod 3, 552));
    policy = Ldlp_core.Batch.paper_default;
    interleave = 7;
  }

let test_sched_equivalence_fixed () =
  match Sched_oracle.equivalent paper_spec with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_sched_trace_shape () =
  let t = Sched_oracle.run_spec Ldlp_core.Sched.Conventional paper_spec in
  (* Msg 0 is divisible by 3, so layer 2 consumes it: visits 0,1,2. *)
  Alcotest.(check (list int)) "consumed at layer 2" [ 0; 1; 2 ] t.Sched_oracle.visits.(0);
  (* Msg 1 passes everything: all five layers. *)
  Alcotest.(check (list int)) "full climb" [ 0; 1; 2; 3; 4 ] t.Sched_oracle.visits.(1);
  check "conserved" true
    (Sched_oracle.conserved t.Sched_oracle.stats ~pending:0)

let prop_sched_equivalence =
  QCheck.Test.make
    ~name:"conventional and LDLP visit the same per-message layer multiset"
    ~count:120 QCheck.small_nat (fun seed ->
      let rng = Ldlp_sim.Rng.create ~seed in
      let spec = Sched_oracle.random_spec ~rng in
      match Sched_oracle.equivalent spec with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%s" e)

let prop_sched_conservation =
  QCheck.Test.make
    ~name:"conservation: injected = delivered + consumed + misrouted"
    ~count:120 QCheck.small_nat (fun seed ->
      let rng = Ldlp_sim.Rng.create ~seed:(seed + 1000) in
      let spec = Sched_oracle.random_spec ~rng in
      List.for_all
        (fun d ->
          let t = Sched_oracle.run_spec d spec in
          Sched_oracle.conserved t.Sched_oracle.stats ~pending:0)
        [
          Ldlp_core.Sched.Conventional;
          Ldlp_core.Sched.Ldlp spec.Sched_oracle.policy;
        ])

(* ---------- Invariant (LDLP_CHECK hot-path assertions) ---------- *)

let with_invariants f =
  let was = Ldlp_core.Invariant.enabled () in
  Ldlp_core.Invariant.set_enabled true;
  Fun.protect ~finally:(fun () -> Ldlp_core.Invariant.set_enabled was) f

let test_invariant_gate () =
  let was = Ldlp_core.Invariant.enabled () in
  Fun.protect
    ~finally:(fun () -> Ldlp_core.Invariant.set_enabled was)
    (fun () ->
      Ldlp_core.Invariant.set_enabled false;
      Ldlp_core.Invariant.check false "ignored when disabled";
      Ldlp_core.Invariant.set_enabled true;
      Alcotest.check_raises "raises when enabled"
        (Ldlp_core.Invariant.Violation "boom") (fun () ->
          Ldlp_core.Invariant.check false "boom");
      (* [checkf] only evaluates the condition when enabled. *)
      Ldlp_core.Invariant.set_enabled false;
      Ldlp_core.Invariant.checkf (fun () -> Alcotest.fail "evaluated") "no")

let test_invariants_pass_on_sched () =
  with_invariants (fun () ->
      match Sched_oracle.equivalent paper_spec with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_invariants_pass_on_runtime () =
  with_invariants (fun () ->
      let pool = Ldlp_buf.Pool.create () in
      let layers =
        List.init 3 (fun i ->
            Ldlp_core.Layer.passthrough (Printf.sprintf "L%d" i))
      in
      let workload =
        List.init 200 (fun i ->
            { Ldlp_core.Runtime.at = float_of_int i *. 1e-3; size = 552; flow = 0 })
      in
      let r =
        Ldlp_core.Runtime.run
          ~discipline:(Ldlp_core.Sched.Ldlp Ldlp_core.Batch.paper_default)
          ~layers
          ~make_payload:(fun ~size ->
            Ldlp_buf.Mbuf.of_bytes pool (Bytes.create (min size 1024)))
          ~buffer_cap:20
          ~service:(fun ~batch:_ _ -> 0.002)
          workload
      in
      check "overload exercised drops" true (r.Ldlp_core.Runtime.dropped > 0))

let test_invariants_pass_on_simrun () =
  (* The cycle-accurate model under LDLP_CHECK=1: the hot-path assertions
     must hold through a real (small) simulation of each discipline. *)
  with_invariants (fun () ->
      let params =
        { Ldlp_model.Params.quick with Ldlp_model.Params.runs = 1; seconds = 0.02 }
      in
      List.iter
        (fun discipline ->
          let r =
            Ldlp_model.Simrun.run_avg ~params ~discipline ~seed:3
              ~make_source:(fun rng ->
                Ldlp_traffic.Source.limit_time
                  (Ldlp_traffic.Poisson.source ~rng ~rate:4000.0 ())
                  params.Ldlp_model.Params.seconds)
              ()
          in
          check "simulation processed messages" true
            (r.Ldlp_model.Simrun.processed > 0))
        [ Ldlp_model.Simrun.Conventional; Ldlp_model.Simrun.Ilp; Ldlp_model.Simrun.Ldlp ])

(* ---------- Observability differential: metric sheet vs memsys probe ----------

   The per-layer counters lib/obs accumulates during a simulation are an
   independent code path (counter-diffing around each handler's charge)
   from the raw memory-system event stream.  Recompute every per-layer
   counter from the probe events alone and demand exact agreement, over
   random stack shapes, seeds and all three disciplines.  [Read_data]
   events carry only the miss count, so their stall contribution is
   reconstructed from the d-cache miss penalty. *)

let test_obs_matches_memsys_probe () =
  Ldlp_obs.Obs.with_enabled true (fun () ->
      let module Metrics = Ldlp_obs.Metrics in
      let module Simrun = Ldlp_model.Simrun in
      let cases =
        [
          (Simrun.Conventional, 3, 11);
          (Simrun.Conventional, 5, 12);
          (Simrun.Ilp, 4, 13);
          (Simrun.Ldlp, 5, 14);
          (Simrun.Ldlp, 7, 15);
          (Simrun.Ldlp, 2, 16);
        ]
      in
      List.iter
        (fun (discipline, layers, seed) ->
          let params =
            {
              Ldlp_model.Params.quick with
              Ldlp_model.Params.layers;
              runs = 1;
              seconds = 0.05;
            }
          in
          let names = Simrun.layer_names params in
          let n = List.length names in
          let im = Array.make n 0
          and dm = Array.make n 0
          and wm = Array.make n 0
          and ex = Array.make n 0
          and st = Array.make n 0 in
          let dpenalty =
            params.Ldlp_model.Params.dcache.Ldlp_cache.Config.miss_penalty
          in
          let probe ~layer ev =
            check "events only fire inside a charging layer" true (layer >= 0);
            match ev with
            | Ldlp_cache.Memsys.Fetch_code { misses; stall; _ } ->
              im.(layer) <- im.(layer) + misses;
              st.(layer) <- st.(layer) + stall
            | Ldlp_cache.Memsys.Read_data { misses; _ } ->
              dm.(layer) <- dm.(layer) + misses;
              st.(layer) <- st.(layer) + (misses * dpenalty)
            | Ldlp_cache.Memsys.Write_data { misses; _ } ->
              wm.(layer) <- wm.(layer) + misses
            | Ldlp_cache.Memsys.Execute { cycles } ->
              ex.(layer) <- ex.(layer) + cycles
          in
          let m = Metrics.create ~label:"differential" ~layer_names:names in
          let rng = Ldlp_sim.Rng.create ~seed in
          let source =
            Ldlp_traffic.Source.limit_time
              (Ldlp_traffic.Poisson.source
                 ~rng:(Ldlp_sim.Rng.create ~seed:(seed + 100))
                 ~rate:8000.0 ())
              params.Ldlp_model.Params.seconds
          in
          let r =
            Simrun.run_once ~params ~discipline ~rng ~source ~metrics:m
              ~probe ()
          in
          check "simulation processed messages" true
            (r.Ldlp_model.Simrun.processed > 0);
          let case = Printf.sprintf "%s/%d layers" (Simrun.discipline_name discipline) layers in
          for i = 0 to n - 1 do
            let l = Metrics.layer m i in
            checki (case ^ " imisses") im.(i) l.Metrics.imisses;
            checki (case ^ " dmisses") dm.(i) l.Metrics.dmisses;
            checki (case ^ " wmisses") wm.(i) l.Metrics.wmisses;
            checki (case ^ " exec") ex.(i) l.Metrics.exec_cycles;
            checki (case ^ " stall") st.(i) l.Metrics.stall_cycles
          done;
          (* And the sheet's totals agree with the simulation's own
             end-of-run counter roll-up. *)
          let t = Metrics.totals m in
          checki (case ^ " total misses vs result")
            (Array.fold_left ( + ) 0 im)
            t.Metrics.t_imisses)
        cases)

let suite =
  [
    Alcotest.test_case "oracle LRU eviction" `Quick test_oracle_lru_eviction;
    Alcotest.test_case "oracle flush/occupancy" `Quick
      test_oracle_flush_and_occupancy;
    Alcotest.test_case "differential direct-mapped 10k" `Quick
      test_differential_direct;
    Alcotest.test_case "differential 2-way 10k" `Quick test_differential_2way;
    Alcotest.test_case "differential 4-way 10k" `Quick test_differential_4way;
    QCheck_alcotest.to_alcotest prop_differential_random_configs;
    Alcotest.test_case "differential detects divergence" `Quick
      test_differential_detects_divergence;
    Alcotest.test_case "sched equivalence (paper-like spec)" `Quick
      test_sched_equivalence_fixed;
    Alcotest.test_case "sched trace shape" `Quick test_sched_trace_shape;
    QCheck_alcotest.to_alcotest prop_sched_equivalence;
    QCheck_alcotest.to_alcotest prop_sched_conservation;
    Alcotest.test_case "invariant gate" `Quick test_invariant_gate;
    Alcotest.test_case "invariants pass on sched oracle" `Quick
      test_invariants_pass_on_sched;
    Alcotest.test_case "invariants pass on runtime" `Quick
      test_invariants_pass_on_runtime;
    Alcotest.test_case "invariants pass on simrun" `Slow
      test_invariants_pass_on_simrun;
    Alcotest.test_case "obs counters match memsys probe" `Quick
      test_obs_matches_memsys_probe;
  ]
