(* Tests for the LDLP engine: batch policies, the scheduler's ordering and
   conservation invariants, the blocking estimator, the runtime. *)

open Ldlp_core

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* ---------- Msg ---------- *)

let test_msg_ids_unique () =
  let a = Msg.make () and b = Msg.make () in
  check "unique ids" true (a.Msg.id <> b.Msg.id)

let test_msg_with_payload () =
  let a = Msg.make ~flow:3 ~arrival:1.5 ~size:100 "x" in
  let b = Msg.with_payload a 42 ~size:4 in
  checki "same id" a.Msg.id b.Msg.id;
  checki "same flow" 3 b.Msg.flow;
  checki "new size" 4 b.Msg.size;
  Alcotest.(check (float 0.0)) "same arrival" 1.5 b.Msg.arrival

(* ---------- Batch ---------- *)

let test_batch_fixed () =
  checki "fixed caps" 3 (Batch.limit (Batch.Fixed 3) ~sizes:[ 1; 1; 1; 1; 1 ]);
  checki "fixed under" 2 (Batch.limit (Batch.Fixed 3) ~sizes:[ 1; 1 ]);
  checki "empty" 0 (Batch.limit (Batch.Fixed 3) ~sizes:[])

let test_batch_all () =
  checki "all" 4 (Batch.limit Batch.All ~sizes:[ 1; 2; 3; 4 ])

let test_batch_dcache_fit_paper () =
  (* 8192-byte cache, 552-byte messages + 32 overhead -> 14 per batch,
     the paper's "flattens beyond 8500 msgs/sec" limit. *)
  let sizes = List.init 50 (fun _ -> 552) in
  checki "paper batch is 14" 14 (Batch.limit Batch.paper_default ~sizes)

let test_batch_oversized_msg () =
  (* A message bigger than the cache must still pass (batch of 1). *)
  checki "oversized passes alone" 1
    (Batch.limit Batch.paper_default ~sizes:[ 100000; 552 ])

let prop_batch_bounds =
  QCheck.Test.make ~name:"batch limit is in [1, pending] when pending > 0"
    ~count:300
    QCheck.(list_of_size Gen.(1 -- 40) (int_range 0 4096))
    (fun sizes ->
      List.for_all
        (fun policy ->
          let n = Batch.limit policy ~sizes in
          n >= 1 && n <= List.length sizes)
        [
          Batch.All;
          Batch.Fixed 5;
          Batch.paper_default;
          Batch.Dcache_fit { cache_bytes = 1024; per_msg_overhead = 0 };
        ])

let prop_batch_fixed_cap =
  QCheck.Test.make ~name:"Fixed n never exceeds n" ~count:300
    QCheck.(
      pair (int_range 1 50) (list_of_size Gen.(0 -- 60) (int_range 0 4096)))
    (fun (n, sizes) -> Batch.limit (Batch.Fixed n) ~sizes <= n)

let prop_batch_dcache_monotone =
  (* A bigger data cache never shrinks the batch (Section 3.2: the batch is
     "as many messages as will fit in the data cache"). *)
  QCheck.Test.make ~name:"Dcache_fit limit is monotone in cache_bytes"
    ~count:300
    QCheck.(
      quad (int_range 0 16384) (int_range 0 16384) (int_range 0 64)
        (list_of_size Gen.(1 -- 40) (int_range 0 4096)))
    (fun (c1, c2, per_msg_overhead, sizes) ->
      let small = min c1 c2 and big = max c1 c2 in
      Batch.limit (Batch.Dcache_fit { cache_bytes = small; per_msg_overhead }) ~sizes
      <= Batch.limit (Batch.Dcache_fit { cache_bytes = big; per_msg_overhead }) ~sizes)

let prop_batch_prefix_sum =
  (* Dcache_fit takes exactly the longest prefix fitting the cache budget
     (always at least one message). *)
  QCheck.Test.make ~name:"Dcache_fit takes the longest fitting prefix"
    ~count:300
    QCheck.(
      triple (int_range 64 8192) (int_range 0 64)
        (list_of_size Gen.(1 -- 40) (int_range 0 4096)))
    (fun (cache_bytes, per_msg_overhead, sizes) ->
      let n =
        Batch.limit (Batch.Dcache_fit { cache_bytes; per_msg_overhead }) ~sizes
      in
      let cost k =
        List.fold_left ( + ) 0
          (List.filteri (fun i _ -> i < k) (List.map (( + ) per_msg_overhead) sizes))
      in
      (n = 1 || cost n <= cache_bytes)
      && (n >= List.length sizes || cost (n + 1) > cache_bytes))

(* ---------- Sched helpers ---------- *)

(* A stack of [n] passthrough layers that logs (layer, msg id) handling
   order. *)
let logging_stack ~discipline ~n =
  let log = ref [] in
  let delivered = ref [] in
  let layers =
    List.init n (fun i ->
        Layer.v ~name:(Printf.sprintf "L%d" i) (fun msg ->
            [ Layer.Deliver_up msg ]))
  in
  let sched =
    Sched.create ~discipline ~layers
      ~up:(fun m -> delivered := m.Msg.id :: !delivered)
      ~on_handled:(fun i _ m -> log := (i, m.Msg.id) :: !log)
      ()
  in
  (sched, log, delivered)

let inject_n sched n =
  List.init n (fun i ->
      let m = Msg.make ~flow:(i mod 3) ~size:552 i in
      Sched.inject sched m;
      m.Msg.id)

let test_conventional_order () =
  (* Conventional: msg 1 climbs all layers before msg 2 starts. *)
  let sched, log, _ = logging_stack ~discipline:Sched.Conventional ~n:3 in
  let ids = inject_n sched 2 in
  Sched.run sched;
  let expected =
    match ids with
    | [ a; b ] -> [ (0, a); (1, a); (2, a); (0, b); (1, b); (2, b) ]
    | _ -> assert false
  in
  check "depth-first order" true (List.rev !log = expected)

let test_ldlp_blocked_order () =
  (* LDLP: layer 0 processes the whole batch before layer 1 runs. *)
  let sched, log, _ = logging_stack ~discipline:(Sched.Ldlp Batch.All) ~n:3 in
  let ids = inject_n sched 3 in
  Sched.run sched;
  let expected =
    List.concat_map (fun layer -> List.map (fun id -> (layer, id)) ids) [ 0; 1; 2 ]
  in
  check "blocked (layer-major) order" true (List.rev !log = expected)

let test_ldlp_batch_cap_respected () =
  let sched, log, _ = logging_stack ~discipline:(Sched.Ldlp (Batch.Fixed 2)) ~n:2 in
  ignore (inject_n sched 5);
  (* First step: bottom layer processes at most 2. *)
  ignore (Sched.step sched);
  let layer0 = List.filter (fun (l, _) -> l = 0) !log in
  checki "first quantum bounded" 2 (List.length layer0);
  Sched.run sched;
  let st = Sched.stats sched in
  check "max batch <= 2" true (st.Sched.max_batch <= 2);
  checki "all delivered" 5 st.Sched.delivered

let test_ldlp_priority_upper_first () =
  (* After the bottom yields, the upper layer must drain before the bottom
     takes another batch. *)
  let sched, log, _ = logging_stack ~discipline:(Sched.Ldlp (Batch.Fixed 1)) ~n:2 in
  ignore (inject_n sched 2);
  Sched.run sched;
  (* With batch 1, order must be 0,1 (msg1) then 0,1 (msg2): the upper
     queue never holds two messages. *)
  let layers_in_order = List.rev_map fst !log in
  check "upper layer drains between batches" true
    (layers_in_order = [ 0; 1; 0; 1 ])

let test_send_down_and_consume () =
  let downs = ref [] in
  let layers =
    [
      Layer.v ~name:"bottom" (fun m -> [ Layer.Deliver_up m ]);
      Layer.v ~name:"replier" (fun m ->
          [ Layer.Send_down (Msg.with_payload m (-m.Msg.payload) ~size:4); Layer.Consume ]);
    ]
  in
  let sched =
    Sched.create ~discipline:(Sched.Ldlp Batch.All) ~layers
      ~down:(fun m -> downs := m.Msg.payload :: !downs)
      ()
  in
  Sched.inject sched (Msg.make ~size:1 7);
  Sched.run sched;
  Alcotest.(check (list int)) "reply sent down" [ -7 ] !downs;
  let st = Sched.stats sched in
  checki "consumed" 1 st.Sched.consumed;
  checki "sent down" 1 st.Sched.sent_down;
  checki "delivered" 0 st.Sched.delivered

let prop_conservation =
  QCheck.Test.make ~name:"every injected message is delivered exactly once"
    ~count:100
    QCheck.(pair (int_range 0 50) (int_range 1 5))
    (fun (n, nlayers) ->
      List.for_all
        (fun discipline ->
          let sched, _, delivered = logging_stack ~discipline ~n:nlayers in
          let ids = inject_n sched n in
          Sched.run sched;
          let got = List.sort compare !delivered in
          got = List.sort compare ids && Sched.pending sched = 0)
        [ Sched.Conventional; Sched.Ldlp Batch.All; Sched.Ldlp (Batch.Fixed 3) ])

let prop_fifo_per_flow =
  QCheck.Test.make ~name:"per-flow FIFO order preserved by both disciplines"
    ~count:100
    QCheck.(pair (int_range 0 60) (int_range 1 4))
    (fun (n, nlayers) ->
      List.for_all
        (fun discipline ->
          let sched, _, delivered = logging_stack ~discipline ~n:nlayers in
          let ids = inject_n sched n in
          Sched.run sched;
          (* Delivered order restricted to any single flow = injected
             order.  Flow = position mod 3 (see inject_n). *)
          let order = List.rev !delivered in
          let flow_of =
            let tbl = Hashtbl.create 16 in
            List.iteri (fun i id -> Hashtbl.add tbl id (i mod 3)) ids;
            Hashtbl.find tbl
          in
          List.for_all
            (fun f ->
              let inj = List.filter (fun id -> flow_of id = f) ids in
              let del = List.filter (fun id -> flow_of id = f) order in
              inj = del)
            [ 0; 1; 2 ])
        [ Sched.Conventional; Sched.Ldlp Batch.paper_default ])

let test_stats_per_layer () =
  let sched, _, _ = logging_stack ~discipline:Sched.Conventional ~n:2 in
  ignore (inject_n sched 4);
  Sched.run sched;
  let st = Sched.stats sched in
  List.iter (fun (_, n) -> checki "each layer handled all" 4 n) st.Sched.per_layer;
  checki "injected" 4 st.Sched.injected

let test_intake_shedding () =
  let shed_ids = ref [] in
  let delivered = ref [] in
  let sched =
    Sched.create ~discipline:Sched.Conventional
      ~layers:[ Layer.passthrough "l0"; Layer.passthrough "l1" ]
      ~up:(fun m -> delivered := m.Msg.id :: !delivered)
      ~intake_limit:3
      ~on_shed:(fun m -> shed_ids := m.Msg.id :: !shed_ids)
      ()
  in
  let results =
    List.map (fun m -> (m.Msg.id, Sched.try_inject sched m))
      (List.init 5 (fun i -> Msg.make ~size:10 i))
  in
  checki "watermark admits 3" 3 (List.length (List.filter snd results));
  checki "2 passed to on_shed" 2 (List.length !shed_ids);
  (* The refused messages are the last two offered. *)
  Alcotest.(check (list bool))
    "first-come first-served" [ true; true; true; false; false ]
    (List.map snd results);
  let st = Sched.stats sched in
  checki "stats.shed" 2 st.Sched.shed;
  (* Shed arrivals never enter the stack: the conservation invariant
     (injected = delivered + consumed + sent_down) is untouched. *)
  checki "shed not counted injected" 3 st.Sched.injected;
  Sched.run sched;
  checki "accepted messages all delivered" 3 (List.length !delivered);
  checki "nothing shed mid-run" 2 (Sched.stats sched).Sched.shed;
  (* Draining the queue reopens the intake. *)
  check "room after run" true (Sched.try_inject sched (Msg.make ~size:10 9));
  (* Without a limit try_inject never refuses. *)
  let open_sched =
    Sched.create ~discipline:(Sched.Ldlp Batch.All)
      ~layers:[ Layer.passthrough "l0" ] ()
  in
  check "unlimited intake" true
    (List.for_all Fun.id
       (List.init 100 (fun i -> Sched.try_inject open_sched (Msg.make i))))

let test_shed_scalar_only_with_limit () =
  Ldlp_obs.Obs.with_enabled true (fun () ->
      let m = Ldlp_obs.Metrics.create ~label:"shed" ~layer_names:[ "l0" ] in
      let sched =
        Sched.create ~discipline:Sched.Conventional
          ~layers:[ Layer.passthrough "l0" ]
          ~intake_limit:1 ~metrics:m ()
      in
      ignore (Sched.try_inject sched (Msg.make 0));
      ignore (Sched.try_inject sched (Msg.make 1));
      ignore (Sched.try_inject sched (Msg.make 2));
      checki "scalar mirrors stats.shed" (Sched.stats sched).Sched.shed
        (List.assoc "shed" (Ldlp_obs.Metrics.scalars m));
      checki "two shed" 2 (List.assoc "shed" (Ldlp_obs.Metrics.scalars m));
      (* No intake limit: the scalar is not even registered, keeping
         existing stats sheets (and their goldens) unchanged. *)
      let m2 = Ldlp_obs.Metrics.create ~label:"noshed" ~layer_names:[ "l0" ] in
      let _sched2 =
        Sched.create ~discipline:Sched.Conventional
          ~layers:[ Layer.passthrough "l0" ]
          ~metrics:m2 ()
      in
      check "no scalar without a limit" false
        (List.mem_assoc "shed" (Ldlp_obs.Metrics.scalars m2)))

let test_empty_stack_rejected () =
  check "empty stack raises" true
    (try
       ignore (Sched.create ~discipline:Sched.Conventional ~layers:[] ());
       false
     with Invalid_argument _ -> true)

(* ---------- Txsched (transmit side) ---------- *)

let tx_logging_stack ~discipline ~n =
  let log = ref [] in
  let wired = ref [] in
  let layers = List.init n (fun i -> Layer.passthrough (Printf.sprintf "L%d" i)) in
  let tx =
    Txsched.create ~discipline ~layers
      ~wire:(fun m -> wired := m.Msg.id :: !wired)
      ~on_handled:(fun i _ m -> log := (i, m.Msg.id) :: !log)
      ()
  in
  (tx, log, wired)

let tx_submit_n tx n =
  List.init n (fun i ->
      let m = Msg.make ~size:552 i in
      Txsched.submit tx m;
      m.Msg.id)

let test_tx_conventional_order () =
  let tx, log, _ = tx_logging_stack ~discipline:Sched.Conventional ~n:3 in
  let ids = tx_submit_n tx 2 in
  Txsched.run tx;
  let expected =
    match ids with
    | [ a; b ] -> [ (2, a); (1, a); (0, a); (2, b); (1, b); (0, b) ]
    | _ -> assert false
  in
  check "top-down depth-first" true (List.rev !log = expected)

let test_tx_ldlp_blocked_order () =
  let tx, log, _ = tx_logging_stack ~discipline:(Sched.Ldlp Batch.All) ~n:3 in
  let ids = tx_submit_n tx 3 in
  Txsched.run tx;
  let expected =
    List.concat_map (fun layer -> List.map (fun id -> (layer, id)) ids) [ 2; 1; 0 ]
  in
  check "blocked, descending layers" true (List.rev !log = expected)

let test_tx_conservation () =
  List.iter
    (fun discipline ->
      let tx, _, wired = tx_logging_stack ~discipline ~n:4 in
      let ids = tx_submit_n tx 25 in
      Txsched.run tx;
      check "all transmitted once" true
        (List.sort compare !wired = List.sort compare ids);
      checki "nothing pending" 0 (Txsched.pending tx))
    [ Sched.Conventional; Sched.Ldlp Batch.paper_default; Sched.Ldlp (Batch.Fixed 3) ]

let test_tx_fifo_order_on_wire () =
  let tx, _, wired = tx_logging_stack ~discipline:(Sched.Ldlp Batch.paper_default) ~n:3 in
  let ids = tx_submit_n tx 20 in
  Txsched.run tx;
  check "wire order = submission order" true (List.rev !wired = ids)

let test_tx_batch_cap () =
  let tx, _, _ = tx_logging_stack ~discipline:(Sched.Ldlp (Batch.Fixed 4)) ~n:2 in
  ignore (tx_submit_n tx 11);
  Txsched.run tx;
  let st = Txsched.stats tx in
  check "max batch <= 4" true (st.Txsched.max_batch <= 4);
  checki "all transmitted" 11 st.Txsched.transmitted

let test_tx_lower_layer_priority () =
  (* With batch 1, each message must fully descend before the next is
     taken from the submission queue. *)
  let tx, log, _ = tx_logging_stack ~discipline:(Sched.Ldlp (Batch.Fixed 1)) ~n:2 in
  ignore (tx_submit_n tx 2);
  Txsched.run tx;
  check "descend between batches" true (List.rev_map fst !log = [ 1; 0; 1; 0 ])

let test_tx_custom_handler () =
  (* A tx handler that encapsulates (grows the size) and one that absorbs
     every second message. *)
  let kept = ref 0 in
  let parity = ref 0 in
  let filter =
    Layer.v ~name:"filter"
      ~tx:(fun m ->
        incr parity;
        if !parity mod 2 = 0 then [ Layer.Consume ]
        else [ Layer.Send_down m ])
      (fun m -> [ Layer.Deliver_up m ])
  in
  let enc =
    Layer.v ~name:"enc"
      ~tx:(fun m -> [ Layer.Send_down (Msg.with_payload m m.Msg.payload ~size:(m.Msg.size + 20)) ])
      (fun m -> [ Layer.Deliver_up m ])
  in
  let tx =
    Txsched.create ~discipline:Sched.Conventional ~layers:[ enc; filter ]
      ~wire:(fun m ->
        kept := !kept + 1;
        checki "header added" 120 m.Msg.size)
      ()
  in
  for _ = 1 to 6 do
    Txsched.submit tx (Msg.make ~size:100 ())
  done;
  Txsched.run tx;
  checki "half absorbed" 3 !kept;
  let st = Txsched.stats tx in
  checki "consumed counted" 3 st.Txsched.consumed

(* ---------- Blocking ---------- *)

let paper_stack =
  {
    Blocking.layer_code_bytes = [ 6144; 6144; 6144; 6144; 6144 ];
    layer_data_bytes = [ 256; 256; 256; 256; 256 ];
    msg_bytes = 552;
    cycles_per_msg = 5 * 1652;
  }

let test_blocking_paper_stack () =
  let r = Blocking.recommend Blocking.paper_machine paper_stack in
  check "small-message protocol" true (r.Blocking.message_class = `Small_message);
  checki "batch = dcache fit" 14 r.Blocking.batch;
  (* Paper arithmetic: conventional ~3.5k msg/s, LDLP ~9.9k msg/s. *)
  check
    (Printf.sprintf "conv max rate %.0f ~ 3.5k" r.Blocking.max_rate_conv)
    true
    (r.Blocking.max_rate_conv > 3000.0 && r.Blocking.max_rate_conv < 4000.0);
  check
    (Printf.sprintf "ldlp max rate %.0f ~ 9.9k" r.Blocking.max_rate_ldlp)
    true
    (r.Blocking.max_rate_ldlp > 8500.0 && r.Blocking.max_rate_ldlp < 11500.0);
  check "speedup > 2x" true (r.Blocking.speedup > 2.0)

let test_blocking_large_message () =
  let s = { paper_stack with Blocking.msg_bytes = 64 * 1024 } in
  let r = Blocking.recommend Blocking.paper_machine s in
  check "large-message protocol" true (r.Blocking.message_class = `Large_message);
  checki "blocking factor 1" 1 r.Blocking.batch

let test_blocking_resident_stack () =
  (* A stack that fits in the I-cache gets no code misses at all. *)
  let s =
    {
      Blocking.layer_code_bytes = [ 1024; 1024 ];
      layer_data_bytes = [ 64; 64 ];
      msg_bytes = 552;
      cycles_per_msg = 2000;
    }
  in
  let m = Blocking.misses_per_msg Blocking.paper_machine s ~batch:1 in
  Alcotest.(check (float 1e-9)) "only message lines" 18.0 m

let test_blocking_misses_monotone () =
  let m1 = Blocking.misses_per_msg Blocking.paper_machine paper_stack ~batch:1 in
  let m14 = Blocking.misses_per_msg Blocking.paper_machine paper_stack ~batch:14 in
  check "batching reduces misses" true (m14 < m1 /. 5.0)

let test_group_layers () =
  let m = Blocking.paper_machine in
  (* 10 x 3 KB packs pairwise into an 8 KB cache. *)
  Alcotest.(check (list (list int)))
    "pairs"
    (List.init 5 (fun _ -> [ 3072; 3072 ]))
    (Blocking.group_layers m (List.init 10 (fun _ -> 3072)));
  (* An oversized layer gets its own group and doesn't absorb others. *)
  Alcotest.(check (list (list int)))
    "oversized isolated"
    [ [ 1024 ]; [ 30000 ]; [ 1024; 2048 ] ]
    (Blocking.group_layers m [ 1024; 30000; 1024; 2048 ]);
  Alcotest.(check (list (list int))) "empty" [] (Blocking.group_layers m [])

(* ---------- Runtime ---------- *)

let pool = Ldlp_buf.Pool.create ()

let make_payload ~size = Ldlp_buf.Mbuf.of_bytes pool (Bytes.create (min size 1024))

let passthrough_layers n =
  List.init n (fun i -> Layer.passthrough (Printf.sprintf "L%d" i))

let test_runtime_light_load () =
  let workload =
    List.init 50 (fun i ->
        { Runtime.at = float_of_int i *. 0.01; size = 100; flow = 0 })
  in
  let r =
    Runtime.run ~discipline:Sched.Conventional ~layers:(passthrough_layers 3)
      ~make_payload workload
  in
  checki "all processed" 50 r.Runtime.processed;
  checki "no drops" 0 r.Runtime.dropped;
  check "latency recorded" true (Ldlp_sim.Hist.count r.Runtime.latency = 50)

let test_runtime_overload_drops () =
  (* Service slower than arrival with a tiny buffer must drop. *)
  let workload =
    List.init 100 (fun i ->
        { Runtime.at = float_of_int i *. 0.001; size = 100; flow = 0 })
  in
  let r =
    Runtime.run ~discipline:Sched.Conventional ~layers:(passthrough_layers 2)
      ~make_payload ~buffer_cap:5
      ~service:(fun ~batch:_ _ -> 0.01)
      workload
  in
  check "drops under overload" true (r.Runtime.dropped > 0);
  checki "conservation" 100 (r.Runtime.processed + r.Runtime.dropped)

let test_runtime_ldlp_batches_under_load () =
  let workload =
    List.init 100 (fun i ->
        { Runtime.at = float_of_int i *. 0.001; size = 552; flow = 0 })
  in
  let r =
    Runtime.run ~discipline:(Sched.Ldlp Batch.paper_default)
      ~layers:(passthrough_layers 3) ~make_payload
      ~service:(fun ~batch m ->
        (* Amortised service: fixed cost shared across the batch. *)
        0.002 /. float_of_int batch +. (1e-7 *. float_of_int m.Msg.size))
      workload
  in
  checki "no drops thanks to batching" 0 r.Runtime.dropped;
  check "batches formed" true (r.Runtime.stats.Sched.max_batch > 1)

let test_poisson_workload () =
  let rng = Ldlp_sim.Rng.create ~seed:5 in
  let w = Runtime.poisson_workload ~rng ~rate:1000.0 ~duration:1.0 ~size:552 in
  let n = List.length w in
  check "count plausible" true (n > 850 && n < 1150);
  check "times within duration" true
    (List.for_all (fun p -> p.Runtime.at >= 0.0 && p.Runtime.at < 1.0) w)

let suite =
  [
    Alcotest.test_case "msg ids unique" `Quick test_msg_ids_unique;
    Alcotest.test_case "msg with_payload" `Quick test_msg_with_payload;
    Alcotest.test_case "batch fixed" `Quick test_batch_fixed;
    Alcotest.test_case "batch all" `Quick test_batch_all;
    Alcotest.test_case "batch dcache fit (paper 14)" `Quick test_batch_dcache_fit_paper;
    Alcotest.test_case "batch oversized msg" `Quick test_batch_oversized_msg;
    QCheck_alcotest.to_alcotest prop_batch_bounds;
    QCheck_alcotest.to_alcotest prop_batch_fixed_cap;
    QCheck_alcotest.to_alcotest prop_batch_dcache_monotone;
    QCheck_alcotest.to_alcotest prop_batch_prefix_sum;
    Alcotest.test_case "conventional order" `Quick test_conventional_order;
    Alcotest.test_case "ldlp blocked order" `Quick test_ldlp_blocked_order;
    Alcotest.test_case "ldlp batch cap" `Quick test_ldlp_batch_cap_respected;
    Alcotest.test_case "ldlp priority" `Quick test_ldlp_priority_upper_first;
    Alcotest.test_case "send down / consume" `Quick test_send_down_and_consume;
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_fifo_per_flow;
    Alcotest.test_case "stats per layer" `Quick test_stats_per_layer;
    Alcotest.test_case "intake shedding" `Quick test_intake_shedding;
    Alcotest.test_case "shed scalar only with limit" `Quick
      test_shed_scalar_only_with_limit;
    Alcotest.test_case "empty stack rejected" `Quick test_empty_stack_rejected;
    Alcotest.test_case "tx conventional order" `Quick test_tx_conventional_order;
    Alcotest.test_case "tx ldlp blocked order" `Quick test_tx_ldlp_blocked_order;
    Alcotest.test_case "tx conservation" `Quick test_tx_conservation;
    Alcotest.test_case "tx wire fifo" `Quick test_tx_fifo_order_on_wire;
    Alcotest.test_case "tx batch cap" `Quick test_tx_batch_cap;
    Alcotest.test_case "tx lower priority" `Quick test_tx_lower_layer_priority;
    Alcotest.test_case "tx custom handler" `Quick test_tx_custom_handler;
    Alcotest.test_case "blocking paper stack" `Quick test_blocking_paper_stack;
    Alcotest.test_case "blocking large message" `Quick test_blocking_large_message;
    Alcotest.test_case "blocking resident stack" `Quick test_blocking_resident_stack;
    Alcotest.test_case "blocking monotone" `Quick test_blocking_misses_monotone;
    Alcotest.test_case "group layers" `Quick test_group_layers;
    Alcotest.test_case "runtime light load" `Quick test_runtime_light_load;
    Alcotest.test_case "runtime overload drops" `Quick test_runtime_overload_drops;
    Alcotest.test_case "runtime ldlp batches" `Quick test_runtime_ldlp_batches_under_load;
    Alcotest.test_case "poisson workload" `Quick test_poisson_workload;
  ]
