(* Engine-level tests: the facade-stats projection property (satellite of
   the engine unification — Sched/Txsched/Graphsched stats must be exact
   projections of the underlying Engine stats on random stacks under both
   disciplines), transmit-side intake shedding, and the full-duplex
   topology (same-pass ACK drainage, conservation, shedding at both
   entries). *)

open Ldlp_core

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- random stacks for the projection property ---------- *)

type case = {
  behs : int list;  (* per-layer behaviour selector, bottom-first *)
  nmsgs : int;
  disc : int;  (* 0 = Conventional, 1 = Ldlp All, 2 = Ldlp paper_default *)
  limit : int option;
}

let pp_case c =
  Printf.sprintf "{behs=[%s]; nmsgs=%d; disc=%d; limit=%s}"
    (String.concat ";" (List.map string_of_int c.behs))
    c.nmsgs c.disc
    (match c.limit with None -> "none" | Some l -> string_of_int l)

let gen_case =
  QCheck.Gen.(
    int_range 1 5 >>= fun n ->
    list_repeat n (int_range 0 5) >>= fun behs ->
    int_range 0 40 >>= fun nmsgs ->
    int_range 0 2 >>= fun disc ->
    oneof [ return None; map (fun l -> Some l) (int_range 1 8) ]
    >>= fun limit -> return { behs; nmsgs; disc; limit })

let arb_case = QCheck.make ~print:pp_case gen_case

let discipline_of c =
  match c.disc with
  | 0 -> Sched.Conventional
  | 1 -> Sched.Ldlp Batch.All
  | _ -> Sched.Ldlp Batch.paper_default

(* Handlers are deterministic functions of the payload (the injection
   index), as in the oracle, so conventional and blocked runs — and the
   facade and engine views of one run — describe the same work. *)
let rx_layer i beh =
  let name = Printf.sprintf "l%d" i in
  let handle m =
    match beh with
    | 1 ->
        if m.Msg.payload mod 5 = 0 then [ Layer.Deliver_to ("nowhere", m) ]
        else [ Layer.Deliver_up m ]
    | 2 ->
        if m.Msg.payload mod 2 = 0 then [ Layer.Consume ]
        else [ Layer.Deliver_up m ]
    | 3 ->
        if m.Msg.payload mod 3 = 0 then
          [ Layer.Send_down (Msg.make ~size:40 (-m.Msg.payload - 1));
            Layer.Deliver_up m ]
        else [ Layer.Deliver_up m ]
    | 4 ->
        if m.Msg.payload mod 3 = 0 then [ Layer.Consume ]
        else [ Layer.Deliver_up m ]
    | _ -> [ Layer.Deliver_up m ]
  in
  let tx m =
    match beh with
    | 2 ->
        if m.Msg.payload mod 2 = 0 then [ Layer.Consume ]
        else [ Layer.Send_down m ]
    | 3 ->
        if m.Msg.payload mod 3 = 0 then
          [ Layer.Deliver_up (Msg.make ~size:40 (-m.Msg.payload - 1));
            Layer.Send_down m ]
        else [ Layer.Send_down m ]
    | 4 ->
        if m.Msg.payload mod 3 = 0 then [ Layer.Consume ]
        else [ Layer.Send_down m ]
    | _ -> [ Layer.Send_down m ]
  in
  Layer.v ~name ~tx handle

let case_msgs c =
  List.init c.nmsgs (fun i -> Msg.make ~flow:(i mod 3) ~size:(32 * (i mod 4)) i)

let prop_sched_projection c =
  let layers = List.mapi rx_layer c.behs in
  let sched =
    Sched.create ~discipline:(discipline_of c) ~layers ?intake_limit:c.limit ()
  in
  List.iteri
    (fun i m ->
      ignore (Sched.try_inject sched m);
      if i mod 5 = 4 then ignore (Sched.step sched))
    (case_msgs c);
  Sched.run sched;
  let f = Sched.stats sched in
  let e = Engine.stats (Sched.engine sched) in
  f.Sched.injected = e.Engine.injected
  && f.Sched.delivered = e.Engine.to_up
  && f.Sched.sent_down = e.Engine.to_down
  && f.Sched.consumed = e.Engine.consumed
  && f.Sched.misrouted = e.Engine.misrouted
  && f.Sched.shed = e.Engine.shed
  && f.Sched.batches = e.Engine.batches
  && f.Sched.max_batch = e.Engine.max_batch
  && f.Sched.total_batched = e.Engine.total_batched
  && f.Sched.per_layer = e.Engine.per_node

let prop_tx_projection c =
  let layers = List.mapi rx_layer c.behs in
  let tx =
    Txsched.create ~discipline:(discipline_of c) ~layers
      ?intake_limit:c.limit ()
  in
  List.iteri
    (fun i m ->
      ignore (Txsched.try_inject tx m);
      if i mod 5 = 4 then ignore (Txsched.step tx))
    (case_msgs c);
  Txsched.run tx;
  let f = Txsched.stats tx in
  let e = Engine.stats (Txsched.engine tx) in
  f.Txsched.submitted = e.Engine.injected
  && f.Txsched.transmitted = e.Engine.to_down
  && f.Txsched.looped_up = e.Engine.to_up
  && f.Txsched.consumed = e.Engine.consumed
  && f.Txsched.shed = e.Engine.shed
  && f.Txsched.batches = e.Engine.batches
  && f.Txsched.max_batch = e.Engine.max_batch
  && f.Txsched.total_batched = e.Engine.total_batched
  && f.Txsched.per_layer = e.Engine.per_node

let prop_graph_projection c =
  let g =
    Graphsched.create ~discipline:(discipline_of c) ?intake_limit:c.limit ()
  in
  let layers = Array.of_list (List.mapi rx_layer c.behs) in
  let n = Array.length layers in
  (* Register the chain top-down, as Graphsched requires. *)
  for i = n - 1 downto 0 do
    let above = if i = n - 1 then [] else [ layers.(i + 1).Layer.name ] in
    Graphsched.add_layer g ~above layers.(i)
  done;
  let entry = layers.(0).Layer.name in
  List.iteri
    (fun i m ->
      ignore (Graphsched.try_inject g ~into:entry m);
      if i mod 5 = 4 then ignore (Graphsched.step g))
    (case_msgs c);
  Graphsched.run g;
  let f = Graphsched.stats g in
  let e = Engine.stats (Graphsched.engine g) in
  f.Graphsched.injected = e.Engine.injected
  && f.Graphsched.delivered = e.Engine.to_up
  && f.Graphsched.sent_down = e.Engine.to_down
  && f.Graphsched.consumed = e.Engine.consumed
  && f.Graphsched.misrouted = e.Engine.misrouted
  && f.Graphsched.shed = e.Engine.shed
  && f.Graphsched.batches = e.Engine.batches
  && f.Graphsched.max_batch = e.Engine.max_batch
  && f.Graphsched.total_batched = e.Engine.total_batched
  && f.Graphsched.per_layer = e.Engine.per_node

(* ---------- transmit-side intake shedding ---------- *)

(* Mirror of test_core's [test_intake_shedding] for the transmit facade
   (submission-queue high-watermark). *)
let test_tx_intake_shedding () =
  let shed_ids = ref [] in
  let wired = ref [] in
  let tx =
    Txsched.create ~discipline:Sched.Conventional
      ~layers:[ Layer.passthrough "l0"; Layer.passthrough "l1" ]
      ~wire:(fun m -> wired := m.Msg.id :: !wired)
      ~intake_limit:3
      ~on_shed:(fun m -> shed_ids := m.Msg.id :: !shed_ids)
      ()
  in
  let results =
    List.map
      (fun m -> (m.Msg.id, Txsched.try_inject tx m))
      (List.init 5 (fun i -> Msg.make ~size:10 i))
  in
  checki "watermark admits 3" 3 (List.length (List.filter snd results));
  checki "2 passed to on_shed" 2 (List.length !shed_ids);
  Alcotest.(check (list bool))
    "first-come first-served" [ true; true; true; false; false ]
    (List.map snd results);
  let st = Txsched.stats tx in
  checki "stats.shed" 2 st.Txsched.shed;
  (* Shed submissions never enter the chain: submitted counts only the
     accepted three. *)
  checki "shed not counted submitted" 3 st.Txsched.submitted;
  Txsched.run tx;
  checki "accepted messages all transmitted" 3 (List.length !wired);
  checki "nothing shed mid-run" 2 (Txsched.stats tx).Txsched.shed;
  (* Draining the submission queue reopens the intake. *)
  check "room after run" true (Txsched.try_inject tx (Msg.make ~size:10 9));
  (* Without a limit try_inject never refuses. *)
  let open_tx =
    Txsched.create ~discipline:(Sched.Ldlp Batch.All)
      ~layers:[ Layer.passthrough "l0" ]
      ()
  in
  check "unlimited intake" true
    (List.for_all Fun.id
       (List.init 100 (fun i -> Txsched.try_inject open_tx (Msg.make i))))

(* ---------- full-duplex topology ---------- *)

let test_duplex_layer_names () =
  Alcotest.(check (list string))
    "rx names then /tx names, bottom-first"
    [ "a"; "b"; "a/tx"; "b/tx" ]
    (Engine.duplex_layer_names [ "a"; "b" ])

let test_duplex_entries () =
  let eng =
    Engine.duplex ~discipline:Sched.Conventional
      ~layers:[ Layer.passthrough "a"; Layer.passthrough "b"; Layer.passthrough "c" ]
      ()
  in
  checki "2n nodes" 6 (Engine.node_count eng);
  checki "rx entry is node 0" 0 (Engine.duplex_rx_entry eng);
  checki "tx entry is node 2n-1" 5 (Engine.duplex_tx_entry eng);
  check "rx entry flagged" true (Engine.is_entry eng 0);
  check "tx entry flagged" true (Engine.is_entry eng 5);
  check "mid nodes are not entries" true
    (List.for_all (fun i -> not (Engine.is_entry eng i)) [ 1; 2; 3; 4 ]);
  Alcotest.(check (list string))
    "node names follow duplex_layer_names"
    (Engine.duplex_layer_names [ "a"; "b"; "c" ])
    (List.init 6 (Engine.node_name eng))

let test_duplex_conservation () =
  let up = ref [] in
  let wire = ref [] in
  let eng =
    Engine.duplex ~discipline:(Sched.Ldlp Batch.All)
      ~layers:[ Layer.passthrough "l0"; Layer.passthrough "l1" ]
      ~up:(fun m -> up := m.Msg.payload :: !up)
      ~wire:(fun m -> wire := m.Msg.payload :: !wire)
      ()
  in
  List.iter
    (fun i -> Engine.inject eng ~node:(Engine.duplex_rx_entry eng) (Msg.make ~size:64 i))
    [ 0; 1; 2; 3 ];
  List.iter
    (fun i -> Engine.inject eng ~node:(Engine.duplex_tx_entry eng) (Msg.make ~size:64 i))
    [ 10; 11; 12 ];
  Engine.run eng;
  checki "all rx delivered" 4 (List.length !up);
  Alcotest.(check (list int)) "wire FIFO" [ 10; 11; 12 ] (List.rev !wire);
  let st = Engine.stats eng in
  checki "injected both entries" 7 st.Engine.injected;
  checki "to_up" 4 st.Engine.to_up;
  checki "to_down" 3 st.Engine.to_down;
  checki "idle" 0 (Engine.pending eng);
  checki "conservation" st.Engine.injected
    (st.Engine.to_up + st.Engine.to_down + st.Engine.consumed
   + st.Engine.misrouted)

(* The duplex-specific behaviour: replies generated while draining a
   receive batch cross into the transmit side and reach the wire in the
   same scheduling pass, before newly arrived receive work is touched. *)
let test_duplex_same_pass_acks () =
  let wire = ref [] in
  let top =
    Layer.v ~name:"l1" (fun m ->
        [ Layer.Send_down (Msg.make ~size:40 (1000 + m.Msg.payload));
          Layer.Deliver_up m ])
  in
  let eng =
    Engine.duplex ~discipline:(Sched.Ldlp Batch.All)
      ~layers:[ Layer.passthrough "l0"; top ]
      ~wire:(fun m -> wire := m.Msg.payload :: !wire)
      ()
  in
  let rx = Engine.duplex_rx_entry eng in
  Engine.inject eng ~node:rx (Msg.make ~size:64 0);
  Engine.inject eng ~node:rx (Msg.make ~size:64 1);
  (* Quantum 1: the rx entry batch climbs to the top rx queue. *)
  check "entry quantum" true (Engine.step eng);
  (* New frames arrive; they must wait behind the in-flight batch. *)
  Engine.inject eng ~node:rx (Msg.make ~size:64 2);
  Engine.inject eng ~node:rx (Msg.make ~size:64 3);
  (* Quantum 2: top rx layer replies — ACKs enter the top tx queue. *)
  check "top rx quantum" true (Engine.step eng);
  (* Quanta 3-4: the tx side outranks the waiting rx entry backlog, so
     both ACKs descend to the wire before frames 2 and 3 are touched. *)
  check "tx entry quantum" true (Engine.step eng);
  check "tx bottom quantum" true (Engine.step eng);
  Alcotest.(check (list int)) "ACKs on the wire, in order" [ 1000; 1001 ]
    (List.rev !wire);
  checki "new arrivals still queued" 2 (Engine.backlog eng ~node:rx);
  checki "two tx-side switches so far" 2 (Engine.tx_runs eng);
  Engine.run eng;
  Alcotest.(check (list int)) "second batch's ACKs follow"
    [ 1000; 1001; 1002; 1003 ] (List.rev !wire);
  let st = Engine.stats eng in
  checki "every frame delivered" 4 st.Engine.to_up;
  checki "every ACK transmitted" 4 st.Engine.to_down

let test_duplex_shed_both_entries () =
  let shed = ref 0 in
  let eng =
    Engine.duplex ~discipline:Sched.Conventional
      ~layers:[ Layer.passthrough "l0" ]
      ~intake_limit:2
      ~on_shed:(fun _ -> incr shed)
      ()
  in
  let rx = Engine.duplex_rx_entry eng in
  let tx = Engine.duplex_tx_entry eng in
  check "rx 1" true (Engine.try_inject eng ~node:rx (Msg.make 0));
  check "rx 2" true (Engine.try_inject eng ~node:rx (Msg.make 1));
  check "rx over watermark" false (Engine.try_inject eng ~node:rx (Msg.make 2));
  check "tx 1" true (Engine.try_inject eng ~node:tx (Msg.make 10));
  check "tx 2" true (Engine.try_inject eng ~node:tx (Msg.make 11));
  check "tx over watermark" false (Engine.try_inject eng ~node:tx (Msg.make 12));
  checki "both refusals shed" 2 !shed;
  checki "stats.shed" 2 (Engine.stats eng).Engine.shed;
  checki "accepted only" 4 (Engine.stats eng).Engine.injected;
  Engine.run eng;
  check "intake reopens" true (Engine.try_inject eng ~node:rx (Msg.make 3))

let test_duplex_metrics_rows () =
  let eng =
    Engine.duplex ~discipline:Sched.Conventional
      ~layers:[ Layer.passthrough "a"; Layer.passthrough "b" ]
      ()
  in
  check "sheet must have 2n rows" true
    (try
       Engine.attach_metrics eng
         (Ldlp_obs.Metrics.create ~label:"bad" ~layer_names:[ "a"; "b" ]);
       false
     with Invalid_argument _ -> true);
  Engine.attach_metrics eng
    (Ldlp_obs.Metrics.create ~label:"ok"
       ~layer_names:(Engine.duplex_layer_names [ "a"; "b" ]))

(* ---------- steady-state quantum allocates nothing ---------- *)

(* The whole point of the pooled hot path: once the pool, the ring
   buffers and the free list are warm, an inject+run quantum of
   constant-action layers must not touch the minor heap at all (metrics
   and invariants off).  We run many quanta between two [Gc.minor_words]
   probes and allow less than one word per quantum, which only a
   genuinely allocation-free path can meet — the slack absorbs the boxed
   float the probe itself allocates. *)
let test_zero_alloc_quantum () =
  let quanta = 64 and batch = 16 in
  let run_discipline discipline =
    let layers =
      [
        Layer.passthrough "ether";
        Layer.passthrough "ip";
        Layer.v ~name:"sink" (fun _ -> Layer.consume_only);
      ]
    in
    let mpool = Msg.pool () in
    let sched =
      Sched.create ~discipline ~layers
        ~on_consume:(fun m -> Msg.release mpool m)
        ()
    in
    let quantum () =
      for _ = 1 to batch do
        Sched.inject sched (Msg.acquire mpool ~arrival:0.0 ~size:64 0)
      done;
      Sched.run sched
    in
    (* Warm the pool, the free list and the node ring buffers. *)
    for _ = 1 to 4 do
      quantum ()
    done;
    let before = Gc.minor_words () in
    for _ = 1 to quanta do
      quantum ()
    done;
    let delta = Gc.minor_words () -. before in
    if delta >= float_of_int quanta then
      Alcotest.failf
        "steady-state quantum allocates: %.0f minor words over %d quanta"
        delta quanta
  in
  let was = Invariant.enabled () in
  Invariant.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Invariant.set_enabled was)
    (fun () ->
      run_discipline Sched.Conventional;
      run_discipline (Sched.Ldlp Batch.All);
      run_discipline (Sched.Ldlp Batch.paper_default))

let qcheck t = QCheck_alcotest.to_alcotest t

let suite =
  [
    qcheck
      (QCheck.Test.make ~name:"Sched stats project Engine stats" ~count:150
         arb_case prop_sched_projection);
    qcheck
      (QCheck.Test.make ~name:"Txsched stats project Engine stats" ~count:150
         arb_case prop_tx_projection);
    qcheck
      (QCheck.Test.make ~name:"Graphsched stats project Engine stats"
         ~count:150 arb_case prop_graph_projection);
    Alcotest.test_case "tx intake shedding" `Quick test_tx_intake_shedding;
    Alcotest.test_case "duplex layer names" `Quick test_duplex_layer_names;
    Alcotest.test_case "duplex entries" `Quick test_duplex_entries;
    Alcotest.test_case "duplex conservation" `Quick test_duplex_conservation;
    Alcotest.test_case "duplex same-pass ACKs" `Quick
      test_duplex_same_pass_acks;
    Alcotest.test_case "duplex shed at both entries" `Quick
      test_duplex_shed_both_entries;
    Alcotest.test_case "duplex metrics row shape" `Quick
      test_duplex_metrics_rows;
    Alcotest.test_case "zero-alloc steady-state quantum" `Quick
      test_zero_alloc_quantum;
  ]
