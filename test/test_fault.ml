(* Tests for the fault-injection subsystem: plan validation and
   description, the deterministic impairment engine (same plan + seed =>
   byte-identical event trace, on any domain count), frame conservation
   through the free/clone hooks, and the reorder window differentially
   against an independent reference replay. *)

open Ldlp_fault

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checks = Alcotest.(check string)

(* ---------- Plan ---------- *)

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let test_plan_validation () =
  check "negative drop" true (raises_invalid (fun () -> Plan.v ~drop:(-0.1) ()));
  check "drop=1 outside [0,1)" true (raises_invalid (fun () -> Plan.v ~drop:1.0 ()));
  check "dup=2 rejected" true (raises_invalid (fun () -> Plan.v ~dup:2.0 ()));
  check "negative jitter" true (raises_invalid (fun () -> Plan.v ~jitter:(-1.0) ()));
  check "negative hold_timeout" true
    (raises_invalid (fun () -> Plan.v ~hold_timeout:(-0.01) ()));
  check "reorder without window" true
    (raises_invalid (fun () -> Plan.v ~reorder:0.1 ~reorder_window:0 ()));
  check "unsorted down episodes" true
    (raises_invalid (fun () -> Plan.v ~down:[ (2.0, 3.0); (0.0, 1.0) ] ()));
  check "overlapping down episodes" true
    (raises_invalid (fun () -> Plan.v ~down:[ (0.0, 2.0); (1.0, 3.0) ] ()));
  check "empty down episode" true
    (raises_invalid (fun () -> Plan.v ~down:[ (1.0, 1.0) ] ()));
  (* The acceptance-scenario plan of the soak is valid. *)
  ignore
    (Plan.v ~drop:0.05 ~dup:0.02 ~corrupt:0.001 ~reorder:0.1 ~reorder_window:4 ())

let test_plan_none_and_link_up () =
  check "none is none" true (Plan.is_none Plan.none);
  check "v () = none" true (Plan.is_none (Plan.v ()));
  check "down alone is an impairment" false
    (Plan.is_none (Plan.v ~down:[ (1.0, 2.0) ] ()));
  let p = Plan.v ~down:[ (1.0, 2.0); (5.0, 6.0) ] () in
  check "up before" true (Plan.link_up p 0.5);
  check "down at start (inclusive)" false (Plan.link_up p 1.0);
  check "down inside" false (Plan.link_up p 1.5);
  check "up at stop (exclusive)" true (Plan.link_up p 2.0);
  check "down in second episode" false (Plan.link_up p 5.5);
  check "up after" true (Plan.link_up p 10.0)

let test_plan_describe () =
  checks "pristine" "pristine" (Plan.describe Plan.none);
  checks "single field" "drop=5%" (Plan.describe (Plan.v ~drop:0.05 ()));
  checks "acceptance plan" "drop=5% dup=2% corrupt=0.1% reorder=10%/w4"
    (Plan.describe
       (Plan.v ~drop:0.05 ~dup:0.02 ~corrupt:0.001 ~reorder:0.1
          ~reorder_window:4 ()));
  checks "jitter and down" "drop=1% jitter=100us down=1"
    (Plan.describe (Plan.v ~drop:0.01 ~jitter:1e-4 ~down:[ (0.1, 0.2) ] ()))

(* ---------- Plan: host lifecycles ---------- *)

let test_host_validation () =
  check "empty episode" true
    (raises_invalid (fun () -> Plan.host_v ~crash:[ (1.0, 1.0) ] ()));
  check "unsorted episodes" true
    (raises_invalid (fun () -> Plan.host_v ~crash:[ (2.0, 3.0); (0.0, 1.0) ] ()));
  check "overlapping episodes" true
    (raises_invalid (fun () -> Plan.host_v ~crash:[ (0.0, 2.0); (1.0, 3.0) ] ()));
  ignore (Plan.host_v ~crash:[ (0.0, 1.0); (2.0, 3.0) ] ())

let test_host_up_and_describe () =
  check "immortal is none" true (Plan.host_is_none Plan.host_none);
  checks "immortal describe" "immortal" (Plan.describe_host Plan.host_none);
  let h = Plan.host_v ~crash:[ (1.0, 2.0); (5.0, 6.0) ] () in
  check "not none" false (Plan.host_is_none h);
  check "up before" true (Plan.host_up h 0.5);
  check "dead at down_at (inclusive)" false (Plan.host_up h 1.0);
  check "dead inside" false (Plan.host_up h 1.5);
  check "up at up_at (exclusive)" true (Plan.host_up h 2.0);
  check "dead in second episode" false (Plan.host_up h 5.5);
  checks "describe" "crash@1s+1000ms crash@5s+1000ms" (Plan.describe_host h)

let prop_lifecycle_generates_valid_hosts =
  (* Whatever the knobs, every host a lifecycle draw produces must pass
     its own validator — the generator and the validator agree on what a
     well-formed plan is — and stay inside the horizon. *)
  QCheck.Test.make ~name:"lifecycle generates only valid host plans" ~count:200
    QCheck.(
      quad (float_bound_inclusive 1.0) (1 -- 4) (float_bound_inclusive 1.0)
        (pair small_nat (1 -- 32)))
    (fun (victims, episodes, flap, (seed, hosts)) ->
      let horizon = 0.02 in
      let lc =
        Plan.lifecycle ~victims ~episodes ~min_outage:0.001
          ~mean_outage:0.005 ~flap ~seed ~hosts ~horizon ()
      in
      Array.length lc = hosts
      && Array.for_all
           (fun h ->
             Plan.validate_host h;
             List.for_all
               (fun (d, u) -> d >= 0.0 && u > d && d <= horizon)
               h.Plan.crash)
           lc)

let test_lifecycle_deterministic () =
  let draw () =
    Plan.lifecycle ~victims:0.5 ~episodes:2 ~flap:0.25 ~seed:11 ~hosts:24
      ~horizon:0.05 ()
  in
  check "same knobs, same plans" true (draw () = draw ());
  let other =
    Plan.lifecycle ~victims:0.5 ~episodes:2 ~flap:0.25 ~seed:12 ~hosts:24
      ~horizon:0.05 ()
  in
  check "seed-sensitive" false (draw () = other);
  checki "episode count consistent" (Plan.lifecycle_episodes (draw ()))
    (Plan.lifecycle_episodes (draw ()))

(* ---------- Impair: basic behaviour ---------- *)

let chaotic_plan =
  Plan.v ~drop:0.2 ~dup:0.15 ~corrupt:0.1 ~reorder:0.25 ~reorder_window:3
    ~hold_timeout:0.02 ~jitter:1e-4 ()

let test_impair_passthrough () =
  let imp = Impair.create ~seed:7 Plan.none in
  let out = List.concat_map (fun i -> Impair.send imp ~now:0.0 i) [ 1; 2; 3 ] in
  Alcotest.(check (list int))
    "frames pass unchanged" [ 1; 2; 3 ]
    (List.map (fun e -> e.Impair.frame) out);
  check "no delay" true (List.for_all (fun e -> e.Impair.delay = 0.0) out);
  let s = Impair.stats imp in
  checki "offered" 3 s.Impair.offered;
  checki "delivered" 3 s.Impair.delivered;
  checki "nothing impaired" 0
    (s.Impair.dropped + s.Impair.duplicated + s.Impair.corrupted
   + s.Impair.reordered + s.Impair.down_dropped)

let test_impair_down_episode () =
  let freed = ref [] in
  let imp =
    Impair.create ~seed:7
      ~free:(fun f -> freed := f :: !freed)
      (Plan.v ~down:[ (1.0, 2.0) ] ())
  in
  checki "up: delivered" 1 (List.length (Impair.send imp ~now:0.5 10));
  checki "down: vanishes" 0 (List.length (Impair.send imp ~now:1.5 11));
  checki "up again" 1 (List.length (Impair.send imp ~now:2.5 12));
  Alcotest.(check (list int)) "down frame freed" [ 11 ] !freed;
  checki "down_dropped" 1 (Impair.stats imp).Impair.down_dropped

let test_impair_conservation () =
  (* Every frame offered is accounted for exactly once: emitted, freed
     (drop/down), or still held for reordering — duplicates add frames. *)
  let freed = ref 0 in
  let imp =
    Impair.create ~seed:42 ~clone:Fun.id
      ~free:(fun _ -> incr freed)
      chaotic_plan
  in
  let emitted = ref 0 in
  for i = 1 to 1000 do
    let out = Impair.send imp ~now:(float_of_int i *. 1e-3) i in
    emitted := !emitted + List.length out
  done;
  let held = Impair.held imp in
  let s = Impair.stats imp in
  checki "offered" 1000 s.Impair.offered;
  checki "emissions counted as delivered" !emitted s.Impair.delivered;
  checki "conservation" (1000 + s.Impair.duplicated)
    (!emitted + !freed + held);
  checki "frees = random drops" s.Impair.dropped !freed;
  check "chaos actually happened" true
    (s.Impair.dropped > 0 && s.Impair.duplicated > 0 && s.Impair.corrupted > 0
   && s.Impair.reordered > 0);
  (* Flush hands back everything still held. *)
  checki "flush returns the held frames" held (List.length (Impair.flush imp));
  checki "nothing held after flush" 0 (Impair.held imp)

let test_impair_corrupt_hook () =
  let imp =
    Impair.create ~seed:3
      ~corrupt:(fun f -> f + 1000)
      (Plan.v ~corrupt:0.5 ())
  in
  let out =
    List.concat_map
      (fun i -> Impair.send imp ~now:0.0 i)
      (List.init 100 (fun i -> i))
  in
  let corrupted = List.filter (fun e -> e.Impair.frame >= 1000) out in
  checki "corrupt hook applied per stat" (Impair.stats imp).Impair.corrupted
    (List.length corrupted);
  check "roughly half" true
    (List.length corrupted > 25 && List.length corrupted < 75)

let test_impair_drop_frame () =
  let freed = ref [] in
  let imp =
    Impair.create ~seed:7 ~free:(fun f -> freed := f :: !freed) Plan.none
  in
  Impair.drop_frame imp 99;
  Alcotest.(check (list int)) "freed" [ 99 ] !freed;
  checki "counted dropped" 1 (Impair.stats imp).Impair.dropped

let test_impair_release_due () =
  (* reorder = 0.999 with a seeded rng holds (essentially) every frame;
     release_due after the hold timeout returns them oldest first. *)
  let imp =
    Impair.create ~seed:5
      (Plan.v ~reorder:0.999 ~reorder_window:100 ~hold_timeout:0.01 ())
  in
  let immediate =
    List.concat_map (fun i -> Impair.send imp ~now:(float_of_int i *. 1e-4) i)
      [ 1; 2; 3 ]
  in
  checki "all held" (3 - List.length immediate) (Impair.held imp);
  checki "not due yet" 0 (List.length (Impair.release_due imp ~now:0.005));
  (match Impair.next_deadline imp with
  | Some d -> check "deadline = send + timeout" true (d >= 0.01 && d <= 0.011)
  | None -> Alcotest.fail "no deadline despite held frames");
  let late = Impair.release_due imp ~now:1.0 in
  checki "all due" (3 - List.length immediate) (List.length late);
  checki "drained" 0 (Impair.held imp);
  check "oldest first" true
    (List.map (fun e -> e.Impair.frame) late
    = List.sort compare (List.map (fun e -> e.Impair.frame) late))

(* ---------- Impair: determinism ---------- *)

(* The replayable trace of one (plan, seed) run: every emission with its
   delay, the flush leftovers, and the final stats. *)
let trace seed =
  let imp = Impair.create ~seed ~clone:(fun f -> f + 500) chaotic_plan in
  let events = Buffer.create 256 in
  for i = 1 to 300 do
    List.iter
      (fun e -> Printf.bprintf events "%d@%g;" e.Impair.frame e.Impair.delay)
      (Impair.send imp ~now:(float_of_int i *. 1e-3) i);
    Buffer.add_char events '|'
  done;
  List.iter
    (fun e -> Printf.bprintf events "late:%d;" e.Impair.frame)
    (Impair.release_due imp ~now:10.0);
  let s = Impair.stats imp in
  Printf.bprintf events "d%d dup%d c%d r%d" s.Impair.dropped s.Impair.duplicated
    s.Impair.corrupted s.Impair.reordered;
  Buffer.contents events

let test_impair_deterministic_replay () =
  checks "same seed, same trace" (trace 1996) (trace 1996);
  check "different seed, different trace" true (trace 1996 <> trace 1997)

let test_impair_deterministic_across_domains () =
  (* The engine draws from a private Rng, so the trace cannot depend on
     which domain runs it: the parallel pool at 1 and 3 domains must
     produce identical traces for identical seeds. *)
  let seeds = List.init 6 (fun i -> 100 + i) in
  let seq = Ldlp_par.Pool.map ~domains:1 trace seeds in
  let par = Ldlp_par.Pool.map ~domains:3 trace seeds in
  List.iteri
    (fun i (a, b) -> checks (Printf.sprintf "seed %d" (100 + i)) a b)
    (List.combine seq par)

(* ---------- Reorder window vs a reference replay ---------- *)

(* Independent reference model of the reorder buffer: a held value is
   released after [window] subsequent pushes (oldest first, before the
   pushed value is emitted), or by release_due once its deadline passes. *)
module Ref_reorder = struct
  type 'a t = { window : int; mutable held : ('a * int * float) list }

  let create ~window = { window; held = [] }

  let age t =
    t.held <- List.map (fun (v, c, d) -> (v, c - 1, d)) t.held;
    let out = List.filter (fun (_, c, _) -> c <= 0) t.held in
    t.held <- List.filter (fun (_, c, _) -> c > 0) t.held;
    List.map (fun (v, _, _) -> v) out

  let push t ~hold ~deadline v =
    let out = age t in
    if hold then begin
      t.held <- t.held @ [ (v, t.window, deadline) ];
      out
    end
    else out @ [ v ]

  let release_due t ~now =
    let out = List.filter (fun (_, _, d) -> d <= now) t.held in
    t.held <- List.filter (fun (_, _, d) -> d > now) t.held;
    List.map (fun (v, _, _) -> v) out
end

let test_impair_metrics_scalars () =
  (* The per-cause counters surface as a scalar sheet (gated on the
     observability switch), and teardown flushes are counted. *)
  let imp = Impair.create ~seed:42 chaotic_plan in
  for i = 1 to 500 do
    ignore (Impair.send imp ~now:(float_of_int i *. 1e-3) i)
  done;
  let held = Impair.held imp in
  check "something held" true (held > 0);
  checki "flush returns the held frames" held (List.length (Impair.flush imp));
  let s = Impair.stats imp in
  checki "flushed counter" held s.Impair.flushed;
  Ldlp_obs.Obs.with_enabled true (fun () ->
      let m = Ldlp_obs.Metrics.create ~label:"fault" ~layer_names:[] in
      Impair.metrics_scalars m imp;
      let scalars = Ldlp_obs.Metrics.scalars m in
      let get k =
        match List.assoc_opt k scalars with
        | Some v -> v
        | None -> Alcotest.failf "missing scalar %s" k
      in
      checki "offered scalar" s.Impair.offered (get "fault.offered");
      checki "dropped scalar" s.Impair.dropped (get "fault.dropped");
      checki "duplicated scalar" s.Impair.duplicated (get "fault.duplicated");
      checki "corrupted scalar" s.Impair.corrupted (get "fault.corrupted");
      checki "down scalar" s.Impair.down_dropped (get "fault.down_dropped");
      checki "flushed scalar" s.Impair.flushed (get "fault.flushed");
      checki "still-held scalar" 0 (get "fault.still_held"))

let prop_reorder_matches_reference =
  (* Random hold pattern + interleaved release_due calls: the production
     buffer and the reference must agree on every release, in order. *)
  QCheck.Test.make ~name:"reorder window matches reference replay" ~count:300
    QCheck.(
      pair (1 -- 6)
        (list_of_size Gen.(0 -- 40) (pair bool (option (0 -- 20)))))
    (fun (window, steps) ->
      let buf = Impair.Reorder.create ~window in
      let reference = Ref_reorder.create ~window in
      let ok = ref true in
      List.iteri
        (fun i (hold, due_at) ->
          let now = float_of_int i in
          let deadline = now +. 3.0 in
          let a = Impair.Reorder.push buf ~hold ~deadline i in
          let b = Ref_reorder.push reference ~hold ~deadline i in
          if a <> b then ok := false;
          match due_at with
          | Some t ->
            let now = float_of_int t in
            if
              Impair.Reorder.release_due buf ~now
              <> Ref_reorder.release_due reference ~now
            then ok := false
          | None -> ())
        steps;
      !ok && Impair.Reorder.flush buf = List.map (fun (v, _, _) -> v) reference.Ref_reorder.held)

let test_reorder_window_exact () =
  (* A held frame is overtaken by exactly [window] later frames. *)
  let buf = Impair.Reorder.create ~window:2 in
  Alcotest.(check (list int)) "held" []
    (Impair.Reorder.push buf ~hold:true ~deadline:9.0 0);
  Alcotest.(check (list int)) "1 overtakes" [ 1 ]
    (Impair.Reorder.push buf ~hold:false ~deadline:9.0 1);
  Alcotest.(check (list int)) "window expires: held first" [ 0; 2 ]
    (Impair.Reorder.push buf ~hold:false ~deadline:9.0 2);
  checki "empty" 0 (Impair.Reorder.held buf)

let suite =
  [
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "plan none / link_up" `Quick test_plan_none_and_link_up;
    Alcotest.test_case "plan describe" `Quick test_plan_describe;
    Alcotest.test_case "host lifecycle validation" `Quick test_host_validation;
    Alcotest.test_case "host up / describe" `Quick test_host_up_and_describe;
    QCheck_alcotest.to_alcotest prop_lifecycle_generates_valid_hosts;
    Alcotest.test_case "lifecycle deterministic" `Quick
      test_lifecycle_deterministic;
    Alcotest.test_case "impair passthrough" `Quick test_impair_passthrough;
    Alcotest.test_case "impair down episode" `Quick test_impair_down_episode;
    Alcotest.test_case "impair conservation" `Quick test_impair_conservation;
    Alcotest.test_case "impair corrupt hook" `Quick test_impair_corrupt_hook;
    Alcotest.test_case "impair drop_frame" `Quick test_impair_drop_frame;
    Alcotest.test_case "impair release_due" `Quick test_impair_release_due;
    Alcotest.test_case "impair deterministic replay" `Quick
      test_impair_deterministic_replay;
    Alcotest.test_case "impair deterministic across domains" `Quick
      test_impair_deterministic_across_domains;
    Alcotest.test_case "impair metrics scalars + flushed" `Quick
      test_impair_metrics_scalars;
    QCheck_alcotest.to_alcotest prop_reorder_matches_reference;
    Alcotest.test_case "reorder window exact" `Quick test_reorder_window_exact;
  ]
