(* Tests for the unified flow table: QCheck laws over the exact backing
   store, the LDLP batch path, the seeded eviction stream, and the
   per-domain ownership tripwire. *)

module Ft = Ldlp_flowtable.Flowtable

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let schemes = Ft.all_schemes

(* Interpret integer triples as table ops against a plain Hashtbl
   reference, failing on any delivered-state divergence; returns the
   table, the reference and an order-sensitive digest of everything the
   lookups delivered. *)
let interp ?(slots = 64) scheme ops =
  let t = Ft.create ~scheme ~slots ~name:"qcheck" () in
  let reference : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let digest = ref 0 in
  List.iter
    (fun (tag, k, v) ->
      let k = k land 1023 in
      match tag land 3 with
      | 0 ->
        Ft.insert t k v;
        Hashtbl.replace reference k v
      | 1 ->
        Ft.remove t k;
        Hashtbl.remove reference k
      | _ ->
        let got = Ft.lookup t k in
        if got <> Hashtbl.find_opt reference k then
          QCheck.Test.fail_reportf "%s: lookup %d diverges from reference"
            (Ft.scheme_name scheme) k;
        digest := (!digest * 1000003) + Hashtbl.hash got)
    ops;
  (t, reference, !digest)

let op_triple = QCheck.(triple small_int small_int small_int)

(* Insert/lookup/remove roundtrips are exact under every scheme, and the
   stat ledger obeys its conservation laws whatever the op mix. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"exact roundtrips + conservation, every scheme"
    ~count:100
    QCheck.(list op_triple)
    (fun ops ->
      List.for_all
        (fun scheme ->
          let t, reference, _ = interp scheme ops in
          let s = Ft.stats t in
          Ft.length t = Hashtbl.length reference
          && s.Ft.found + s.Ft.missing = s.Ft.lookups
          && s.Ft.model_hits + s.Ft.model_misses
             = s.Ft.lookups + s.Ft.inserts + s.Ft.removes
          && s.Ft.model_evictions <= s.Ft.model_misses)
        schemes)

(* The front cache is a cost model only: delivered states are identical
   across schemes (exactness by construction). *)
let prop_scheme_independent =
  QCheck.Test.make ~name:"delivered states are scheme-independent" ~count:100
    QCheck.(list op_triple)
    (fun ops ->
      match
        List.map
          (fun scheme ->
            let _, _, d = interp scheme ops in
            d)
          schemes
      with
      | [] -> true
      | d :: rest -> List.for_all (( = ) d) rest)

(* The LDLP batch path reorders only the modeled accesses, never the
   delivered results. *)
let prop_batch_matches_unsorted =
  QCheck.Test.make ~name:"batch-sorted lookup = one-at-a-time lookup"
    ~count:100
    QCheck.(pair (list op_triple) (list small_int))
    (fun (ops, keys) ->
      let keys = Array.of_list (List.map (fun k -> k land 1023) keys) in
      List.for_all
        (fun scheme ->
          let t, _, _ = interp scheme ops in
          Ft.lookup_batch t keys = Array.map (fun k -> Ft.lookup t k) keys)
        schemes)

(* A seeded workload produces the same modeled hit/miss/eviction counts
   on every replay — the eviction stream is a function of the seed. *)
let eviction_counts ~seed scheme =
  let module R = Ldlp_sim.Rng in
  let rng = R.create ~seed in
  let t = Ft.create ~scheme ~slots:64 ~name:"evict" () in
  for k = 0 to 255 do
    Ft.insert t k (k * 7)
  done;
  Ft.flush_cache t;
  Ft.reset_stats t;
  for _ = 1 to 2048 do
    ignore (Ft.lookup t (R.int rng 256))
  done;
  let s = Ft.stats t in
  (s.Ft.model_hits, s.Ft.model_misses, s.Ft.model_evictions)

let prop_seeded_eviction =
  QCheck.Test.make ~name:"eviction stream is seed-deterministic" ~count:50
    QCheck.small_int (fun seed ->
      List.for_all
        (fun scheme ->
          let a = eviction_counts ~seed scheme in
          let b = eviction_counts ~seed scheme in
          let _, misses, evictions = a in
          (* 256 hot keys over 64 modeled slots must actually evict. *)
          a = b && misses > 0 && evictions > 0)
        schemes)

(* ---------- Domains ---------- *)

(* Each worker builds its own domain-local table (the shard discipline)
   and replays a per-index seeded workload; the merged result must not
   depend on the worker count. *)
let domain_run ~domains =
  Ldlp_par.Pool.map ~domains
    (fun i ->
      let module R = Ldlp_sim.Rng in
      let rng = R.create ~seed:(41 + i) in
      let t = Ft.create ~slots:128 ~name:(Printf.sprintf "dom-%d" i) () in
      let digest = ref 0 in
      for k = 0 to 511 do
        Ft.insert t k (k * 3)
      done;
      for _ = 1 to 4096 do
        let k = R.int rng 768 in
        digest := (!digest * 1000003) + Hashtbl.hash (Ft.lookup t k)
      done;
      let s = Ft.stats t in
      (!digest, s.Ft.model_hits, s.Ft.model_misses, s.Ft.model_evictions))
    (List.init 6 Fun.id)

let test_domains_identical () =
  check "1 domain = 3 domains" true
    (domain_run ~domains:1 = domain_run ~domains:3)

(* Cross-domain access to a claimed table raises — the same tripwire
   discipline as Msg pools, so a shard can never silently read another
   shard's flow state. *)
let test_ownership_tripwire () =
  let t : (int, int) Ft.t = Ft.create ~name:"tripwire" () in
  Ft.insert t 1 10;
  check "first guarded access claims an owner" true (Ft.owner t <> None);
  (match
     Domain.join
       (Domain.spawn (fun () ->
            match Ft.lookup t 1 with
            | _ -> Error "cross-domain access did not raise"
            | exception Invalid_argument _ -> Ok ()))
   with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  check "owner still works after the tripwire fired" true
    (Ft.lookup t 1 = Some 10)

(* ---------- Units ---------- *)

let test_create_validation () =
  Alcotest.check_raises "non-pow2 slots"
    (Invalid_argument "Flowtable.create: slots must be a power of two")
    (fun () -> ignore (Ft.create ~slots:1000 ~name:"bad" () : (int, int) Ft.t));
  Alcotest.check_raises "indivisible associativity"
    (Invalid_argument "Flowtable.create: slots not divisible by associativity")
    (fun () ->
      ignore
        (Ft.create ~scheme:(Ft.Set_assoc 3) ~slots:64 ~name:"bad" ()
          : (int, int) Ft.t))

let test_flush_preserves_backing () =
  let t = Ft.create ~name:"flush" () in
  Ft.insert t 5 50;
  Ft.flush_cache t;
  check "backing survives a cache flush" true (Ft.lookup t 5 = Some 50);
  let s = Ft.stats t in
  (* Insert missed cold, then the post-flush lookup missed again. *)
  checki "both guarded ops modeled as misses" 2 s.Ft.model_misses

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "flush keeps backing store" `Quick
      test_flush_preserves_backing;
    Alcotest.test_case "ownership tripwire" `Quick test_ownership_tripwire;
    Alcotest.test_case "1-domain = 3-domain replay" `Quick
      test_domains_identical;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_scheme_independent;
    QCheck_alcotest.to_alcotest prop_batch_matches_unsorted;
    QCheck_alcotest.to_alcotest prop_seeded_eviction;
  ]
