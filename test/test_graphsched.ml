(* Tests for the protocol-graph scheduler: the Section 3.2 general case
   where a layer has several layers directly above it (IP demultiplexing
   to TCP/UDP/ICMP). *)

open Ldlp_core

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* A classic internet graph:

        sockets
        /     \
      tcp     udp     icmp
        \      |      /
             ip
             |
           ether

   Payloads are (proto, id) pairs; the ip layer demultiplexes on proto. *)
let build ~discipline =
  let g = Graphsched.create ~discipline () in
  let log = ref [] in
  let seen name msg = log := (name, snd msg.Msg.payload) :: !log in
  let consume name =
    Layer.v ~name (fun m ->
        seen name m;
        [ Layer.Consume ])
  in
  let pass name ?above:_ targets =
    Layer.v ~name (fun m ->
        seen name m;
        match targets with
        | `Up -> [ Layer.Deliver_up m ]
        | `Demux f -> [ Layer.Deliver_to (f m, m) ])
  in
  Graphsched.add_layer g (consume "sockets");
  Graphsched.add_layer g ~above:[ "sockets" ] (pass "tcp" `Up);
  Graphsched.add_layer g ~above:[ "sockets" ] (pass "udp" `Up);
  Graphsched.add_layer g (consume "icmp");
  Graphsched.add_layer g
    ~above:[ "tcp"; "udp"; "icmp" ]
    (pass "ip" (`Demux (fun m -> fst m.Msg.payload)));
  Graphsched.add_layer g ~above:[ "ip" ] (pass "ether" `Up);
  (g, log)

let msg proto id = Msg.make ~size:100 (proto, id)

let test_graph_shape () =
  let g, _ = build ~discipline:Sched.Conventional in
  Alcotest.(check (list string)) "roots" [ "ether" ] (Graphsched.roots g)

let test_demux_routes () =
  let g, log = build ~discipline:Sched.Conventional in
  Graphsched.inject g ~into:"ether" (msg "tcp" 1);
  Graphsched.inject g ~into:"ether" (msg "udp" 2);
  Graphsched.inject g ~into:"ether" (msg "icmp" 3);
  Graphsched.run g;
  let path id =
    List.rev (List.filter_map (fun (l, i) -> if i = id then Some l else None) !log)
  in
  Alcotest.(check (list string)) "tcp path" [ "ether"; "ip"; "tcp"; "sockets" ] (path 1);
  Alcotest.(check (list string)) "udp path" [ "ether"; "ip"; "udp"; "sockets" ] (path 2);
  Alcotest.(check (list string)) "icmp path" [ "ether"; "ip"; "icmp" ] (path 3);
  let s = Graphsched.stats g in
  checki "all consumed" 3 s.Graphsched.consumed;
  checki "no misroutes" 0 s.Graphsched.misrouted

let test_ldlp_blocked_over_graph () =
  let g, log = build ~discipline:(Sched.Ldlp Batch.All) in
  (* Two messages per branch, injected interleaved. *)
  List.iter
    (Graphsched.inject g ~into:"ether")
    [ msg "tcp" 1; msg "udp" 2; msg "tcp" 3; msg "udp" 4 ];
  Graphsched.run g;
  (* Layer-major order: ether handles all four, then ip all four, then the
     branch layers each handle their pair. *)
  let order = List.rev_map fst !log in
  let prefix = [ "ether"; "ether"; "ether"; "ether"; "ip"; "ip"; "ip"; "ip" ] in
  let rec take n = function
    | [] -> []
    | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
  in
  Alcotest.(check (list string)) "blocked prefix" prefix (take 8 order);
  let s = Graphsched.stats g in
  checki "4 consumed" 4 s.Graphsched.consumed

let test_priority_branch_closest_to_top_first () =
  (* Once ether's batch is enqueued at ip and processed, tcp and udp
     queues (depth 1) must drain before ether (depth 2) takes another
     batch. *)
  let g, log = build ~discipline:(Sched.Ldlp (Batch.Fixed 2)) in
  List.iter
    (Graphsched.inject g ~into:"ether")
    [ msg "tcp" 1; msg "udp" 2; msg "tcp" 3; msg "udp" 4 ];
  Graphsched.run g;
  let order = List.rev_map fst !log in
  (* First quantum: ether x2; then ip x2, branches, sockets — and only
     then ether again. *)
  let first_8 =
    let rec take n = function
      | [] -> []
      | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
    in
    take 8 order
  in
  check "second ether batch comes after upper layers drained" true
    (match first_8 with
    | "ether" :: "ether" :: rest ->
      (* No further "ether" until everything enqueued upward is done. *)
      let upper, _later = List.partition (fun l -> l <> "ether") rest in
      List.length upper >= 5
    | _ -> false)

let test_ambiguous_deliver_up_misroutes () =
  let g = Graphsched.create ~discipline:Sched.Conventional () in
  Graphsched.add_layer g (Layer.passthrough "a");
  Graphsched.add_layer g (Layer.passthrough "b");
  (* "fan" has two parents and wrongly uses Deliver_up. *)
  Graphsched.add_layer g ~above:[ "a"; "b" ] (Layer.passthrough "fan");
  Graphsched.inject g ~into:"fan" (Msg.make ());
  Graphsched.run g;
  let s = Graphsched.stats g in
  checki "misrouted" 1 s.Graphsched.misrouted;
  checki "not delivered" 0 s.Graphsched.delivered

let test_deliver_to_non_edge_misroutes () =
  let g = Graphsched.create ~discipline:Sched.Conventional () in
  Graphsched.add_layer g (Layer.passthrough "top");
  Graphsched.add_layer g ~above:[ "top" ]
    (Layer.v ~name:"bottom" (fun m -> [ Layer.Deliver_to ("nowhere", m) ]));
  Graphsched.inject g ~into:"bottom" (Msg.make ());
  Graphsched.run g;
  checki "misrouted" 1 (Graphsched.stats g).Graphsched.misrouted

let test_duplicate_and_unknown_layers_rejected () =
  let g = Graphsched.create ~discipline:Sched.Conventional () in
  Graphsched.add_layer g (Layer.passthrough "x");
  check "duplicate rejected" true
    (try
       Graphsched.add_layer g (Layer.passthrough "x");
       false
     with Invalid_argument _ -> true);
  check "unknown parent rejected" true
    (try
       Graphsched.add_layer g ~above:[ "ghost" ] (Layer.passthrough "y");
       false
     with Invalid_argument _ -> true)

let prop_graph_conservation =
  QCheck.Test.make ~name:"graph delivers every message exactly once" ~count:100
    QCheck.(pair (list_of_size Gen.(0 -- 40) (int_bound 2)) bool)
    (fun (protos, ldlp) ->
      let discipline =
        if ldlp then Sched.Ldlp Batch.paper_default else Sched.Conventional
      in
      let g, _ = build ~discipline in
      let expected_consumed = List.length protos in
      List.iteri
        (fun i p ->
          let proto = [| "tcp"; "udp"; "icmp" |].(p) in
          Graphsched.inject g ~into:"ether" (msg proto i))
        protos;
      Graphsched.run g;
      let s = Graphsched.stats g in
      s.Graphsched.consumed = expected_consumed
      && s.Graphsched.misrouted = 0
      && Graphsched.pending g = 0)

let test_intake_shedding () =
  let shed_ids = ref [] in
  let g =
    Graphsched.create ~discipline:Sched.Conventional ~intake_limit:2
      ~on_shed:(fun m -> shed_ids := snd m.Msg.payload :: !shed_ids)
      ()
  in
  Graphsched.add_layer g
    (Layer.v ~name:"top" (fun m ->
         ignore m;
         [ Layer.Consume ]));
  Graphsched.add_layer g ~above:[ "top" ]
    (Layer.v ~name:"ether" (fun m -> [ Layer.Deliver_up m ]));
  let results =
    List.init 5 (fun i -> Graphsched.try_inject g ~into:"ether" (msg "tcp" i))
  in
  Alcotest.(check (list bool))
    "watermark admits the first 2" [ true; true; false; false; false ] results;
  Alcotest.(check (list int)) "refused ids to on_shed" [ 2; 3; 4 ]
    (List.rev !shed_ids);
  let st = Graphsched.stats g in
  checki "stats.shed" 3 st.Graphsched.shed;
  checki "shed not counted injected" 2 st.Graphsched.injected;
  Graphsched.run g;
  let st = Graphsched.stats g in
  checki "accepted all consumed" 2 st.Graphsched.consumed;
  check "drained queue reopens intake" true
    (Graphsched.try_inject g ~into:"ether" (msg "tcp" 9))

let suite =
  [
    Alcotest.test_case "graph shape" `Quick test_graph_shape;
    Alcotest.test_case "intake shedding" `Quick test_intake_shedding;
    Alcotest.test_case "demux routes" `Quick test_demux_routes;
    Alcotest.test_case "ldlp blocked over graph" `Quick test_ldlp_blocked_over_graph;
    Alcotest.test_case "branch priority" `Quick
      test_priority_branch_closest_to_top_first;
    Alcotest.test_case "ambiguous deliver_up" `Quick
      test_ambiguous_deliver_up_misroutes;
    Alcotest.test_case "deliver_to non-edge" `Quick test_deliver_to_non_edge_misroutes;
    Alcotest.test_case "duplicate/unknown layers" `Quick
      test_duplicate_and_unknown_layers_rejected;
    QCheck_alcotest.to_alcotest prop_graph_conservation;
  ]
