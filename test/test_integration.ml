(* Cross-library integration tests:
   - a miniature TCP receive-and-acknowledge path built from mbufs and the
     packet codecs, scheduled by the LDLP engine (the paper's Section 2
     subject, executable);
   - a two-switch signalling network (the paper's Section 1 motivation);
   - consistency between the analytic blocking model and the
     cycle-accurate simulator. *)

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checks = Alcotest.(check string)

let pool = Ldlp_buf.Pool.create ()

(* ---------- TCP-lite receive path ---------- *)

let src_ip = Ldlp_packet.Addr.Ipv4.of_string "10.0.0.1"

let dst_ip = Ldlp_packet.Addr.Ipv4.of_string "10.0.0.2"

let build_segment ~seq payload =
  let open Ldlp_packet in
  let tcp_len = Tcp.header_bytes + String.length payload in
  let seg = Bytes.create tcp_len in
  Tcp.build
    {
      Tcp.src_port = 5001;
      dst_port = 80;
      seq;
      ack = 0l;
      data_offset = 5;
      flags = Tcp.flag_ack;
      window = 8760;
      urgent = 0;
    }
    seg 0;
  Bytes.blit_string payload 0 seg Tcp.header_bytes (String.length payload);
  Tcp.store_checksum ~src:src_ip ~dst:dst_ip seg 0 tcp_len;
  let m = Ldlp_buf.Mbuf.of_bytes pool seg in
  let m =
    Ipv4.encapsulate m
      {
        Ipv4.ihl = 5;
        tos = 0;
        total_length = 0;
        ident = 7;
        dont_fragment = true;
        more_fragments = false;
        fragment_offset = 0;
        ttl = 64;
        protocol = Ipv4.proto_tcp;
        src = src_ip;
        dst = dst_ip;
      }
  in
  Ethernet.encapsulate m
    {
      Ethernet.dst = Addr.Mac.of_string "02:00:00:00:00:02";
      src = Addr.Mac.of_string "02:00:00:00:00:01";
      ethertype = Ethernet.ethertype_ipv4;
    }

(* The receive stack: ether -> ip -> tcp.  The TCP layer verifies the
   checksum, appends in-order payload to a socket buffer, and sends an ACK
   downward — the paper's Table 2 path, minus the process machinery. *)
let tcp_stack () =
  let open Ldlp_core in
  let sockbuf = Buffer.create 256 in
  let rcv_nxt = ref 1l in
  let acks = ref [] in
  let bad = ref 0 in
  let ether =
    Layer.v ~name:"ether" (fun msg ->
        match Ldlp_packet.Ethernet.strip msg.Msg.payload with
        | Ok h when h.Ldlp_packet.Ethernet.ethertype = Ldlp_packet.Ethernet.ethertype_ipv4
          ->
          [ Layer.Deliver_up msg ]
        | Ok _ | Error _ ->
          incr bad;
          Ldlp_buf.Mbuf.free pool msg.Msg.payload;
          [ Layer.Consume ])
  in
  let ip =
    Layer.v ~name:"ip" (fun msg ->
        match Ldlp_packet.Ipv4.strip msg.Msg.payload with
        | Ok h
          when h.Ldlp_packet.Ipv4.protocol = Ldlp_packet.Ipv4.proto_tcp
               && not (Ldlp_packet.Ipv4.is_fragment h) ->
          [ Layer.Deliver_up msg ]
        | Ok _ | Error _ ->
          incr bad;
          Ldlp_buf.Mbuf.free pool msg.Msg.payload;
          [ Layer.Consume ])
  in
  let tcp =
    Layer.v ~name:"tcp" (fun msg ->
        let m = msg.Msg.payload in
        if not (Ldlp_packet.Tcp.verify_checksum ~src:src_ip ~dst:dst_ip m) then begin
          incr bad;
          Ldlp_buf.Mbuf.free pool m;
          [ Layer.Consume ]
        end
        else begin
          let m = Ldlp_buf.Mbuf.pullup pool m Ldlp_packet.Tcp.header_bytes in
          let hdr = Ldlp_buf.Mbuf.copy_out m ~pos:0 ~len:Ldlp_packet.Tcp.header_bytes in
          match Ldlp_packet.Tcp.parse hdr 0 Ldlp_packet.Tcp.header_bytes with
          | Error _ ->
            incr bad;
            Ldlp_buf.Mbuf.free pool m;
            [ Layer.Consume ]
          | Ok (h, _) ->
            Ldlp_buf.Mbuf.adj m (h.Ldlp_packet.Tcp.data_offset * 4);
            let data = Ldlp_buf.Mbuf.to_bytes m in
            Ldlp_buf.Mbuf.free pool m;
            if Int32.equal h.Ldlp_packet.Tcp.seq !rcv_nxt then begin
              Buffer.add_bytes sockbuf data;
              rcv_nxt :=
                Ldlp_packet.Tcp.seq_add h.Ldlp_packet.Tcp.seq (Bytes.length data);
              acks := !rcv_nxt :: !acks;
              [ Layer.Consume ]
            end
            else begin
              (* Out of order: drop, re-ack. *)
              acks := !rcv_nxt :: !acks;
              [ Layer.Consume ]
            end
        end)
  in
  ([ ether; ip; tcp ], sockbuf, acks, bad, rcv_nxt)

let drive_tcp ~discipline segments =
  let layers, sockbuf, acks, bad, _ = tcp_stack () in
  let sched = Ldlp_core.Sched.create ~discipline ~layers () in
  List.iter
    (fun m ->
      Ldlp_core.Sched.inject sched
        (Ldlp_core.Msg.make ~size:(Ldlp_buf.Mbuf.length m) m))
    segments;
  Ldlp_core.Sched.run sched;
  (Buffer.contents sockbuf, List.rev !acks, !bad, Ldlp_core.Sched.stats sched)

let segments_of_chunks chunks =
  let _, segs =
    List.fold_left
      (fun (seq, acc) chunk ->
        let m = build_segment ~seq chunk in
        (Ldlp_packet.Tcp.seq_add seq (String.length chunk), m :: acc))
      (1l, []) chunks
  in
  List.rev segs

let test_tcp_path_in_order () =
  let chunks = [ "GET /index"; ".html HTTP"; "/1.0\r\n\r\n" ] in
  let data, acks, bad, stats =
    drive_tcp ~discipline:Ldlp_core.Sched.Conventional (segments_of_chunks chunks)
  in
  checks "reassembled" "GET /index.html HTTP/1.0\r\n\r\n" data;
  checki "no errors" 0 bad;
  checki "acks per segment" 3 (List.length acks);
  check "cumulative acks increase" true
    (acks = List.sort compare acks);
  checki "all consumed" 3 stats.Ldlp_core.Sched.consumed

let test_tcp_path_ldlp_same_result () =
  let chunks = List.init 20 (fun i -> Printf.sprintf "chunk-%02d|" i) in
  let conv, _, bad1, _ =
    drive_tcp ~discipline:Ldlp_core.Sched.Conventional (segments_of_chunks chunks)
  in
  let ldlp, _, bad2, _ =
    drive_tcp
      ~discipline:(Ldlp_core.Sched.Ldlp Ldlp_core.Batch.paper_default)
      (segments_of_chunks chunks)
  in
  checks "identical delivery" conv ldlp;
  checki "no errors conv" 0 bad1;
  checki "no errors ldlp" 0 bad2

let test_tcp_path_corrupted_segment_dropped () =
  let segs = segments_of_chunks [ "good-data-"; "corrupted!"; "more-data." ] in
  (* Corrupt the second segment's payload after checksumming. *)
  (match segs with
  | [ _; s2; _ ] ->
    let len = Ldlp_buf.Mbuf.length s2 in
    Ldlp_buf.Mbuf.copy_into s2 ~pos:(len - 3) (Bytes.of_string "X") ~src_off:0 ~len:1
  | _ -> Alcotest.fail "segments");
  let data, _, bad, _ = drive_tcp ~discipline:Ldlp_core.Sched.Conventional segs in
  checki "one bad segment" 1 bad;
  (* Third segment is now out of order and dropped; only first delivered. *)
  checks "only in-order prefix" "good-data-" data

let test_tcp_path_mixed_traffic () =
  (* Non-IP ethertype frames must be dropped at the bottom layer. *)
  let arp = Ldlp_buf.Mbuf.of_bytes pool (Bytes.make 42 '\x00') in
  let hdr =
    {
      Ldlp_packet.Ethernet.dst = Ldlp_packet.Addr.Mac.broadcast;
      src = Ldlp_packet.Addr.Mac.of_string "02:00:00:00:00:01";
      ethertype = Ldlp_packet.Ethernet.ethertype_arp;
    }
  in
  let arp = Ldlp_packet.Ethernet.encapsulate arp hdr in
  let segs = segments_of_chunks [ "payload" ] @ [ arp ] in
  let data, _, bad, stats = drive_tcp ~discipline:Ldlp_core.Sched.Conventional segs in
  checks "tcp data delivered" "payload" data;
  checki "arp dropped" 1 bad;
  checki "both consumed" 2 stats.Ldlp_core.Sched.consumed

(* ---------- demultiplexing host: TCP and DNS behind one IP layer ------- *)

(* The Section 3.2 graph case on real protocols: ether -> ip -> {tcp, udp},
   where the TCP branch is the tcpmini engine and the UDP branch the
   DNS-lite server, all scheduled by Graphsched under both disciplines. *)
let demux_host ~discipline queries segments =
  let open Ldlp_core in
  let my_ip = Ldlp_packet.Addr.Ipv4.of_string "10.5.0.1" in
  let pcbs = Ldlp_tcpmini.Pcb.create_table () in
  ignore (Ldlp_tcpmini.Pcb.listen pcbs ~port:80 ());
  let dns =
    Ldlp_dnslite.Server.create ~zone:[ ("a.example", "10.5.0.9") ] ()
  in
  let tcp_replies = ref 0 and dns_replies = ref 0 in
  (* Payload: the chain plus the IP source/protocol recorded on the way
     up.  (Per-message state must live in the payload under blocked
     scheduling.) *)
  let g = Graphsched.create ~discipline () in
  let ether =
    Layer.v ~name:"ether" (fun msg ->
        let m, _, _ = msg.Msg.payload in
        match Ldlp_packet.Ethernet.strip m with
        | Ok h when h.Ldlp_packet.Ethernet.ethertype = Ldlp_packet.Ethernet.ethertype_ipv4
          ->
          [ Layer.Deliver_up msg ]
        | Ok _ | Error _ ->
          Ldlp_buf.Mbuf.free pool m;
          [ Layer.Consume ])
  in
  let ip =
    Layer.v ~name:"ip" (fun msg ->
        let m, _, _ = msg.Msg.payload in
        match Ldlp_packet.Ipv4.strip m with
        | Ok h when not (Ldlp_packet.Ipv4.is_fragment h) ->
          let branch =
            if h.Ldlp_packet.Ipv4.protocol = Ldlp_packet.Ipv4.proto_tcp then "tcp"
            else if h.Ldlp_packet.Ipv4.protocol = Ldlp_packet.Ipv4.proto_udp then "udp"
            else ""
          in
          if branch = "" then begin
            Ldlp_buf.Mbuf.free pool m;
            [ Layer.Consume ]
          end
          else
            [
              Layer.Deliver_to
                ( branch,
                  Msg.with_payload msg
                    (m, h.Ldlp_packet.Ipv4.src, h.Ldlp_packet.Ipv4.protocol)
                    ~size:(Ldlp_buf.Mbuf.length m) );
            ]
        | Ok _ | Error _ ->
          Ldlp_buf.Mbuf.free pool m;
          [ Layer.Consume ])
  in
  let tcp =
    Layer.v ~name:"tcp" (fun msg ->
        let m, src, _ = msg.Msg.payload in
        let o =
          Ldlp_tcpmini.Tcp_input.segment_arrived pcbs ~my_ip ~src_ip:src ~pool m
        in
        tcp_replies := !tcp_replies + List.length o.Ldlp_tcpmini.Tcp_input.replies;
        [ Layer.Consume ])
  in
  let udp =
    Layer.v ~name:"udp" (fun msg ->
        let m, src, _ = msg.Msg.payload in
        let flat = Ldlp_buf.Mbuf.to_bytes m in
        Ldlp_buf.Mbuf.free pool m;
        (match Ldlp_packet.Udp.parse flat 0 (Bytes.length flat) with
        | Ok (h, off)
          when Ldlp_packet.Udp.verify_checksum ~src ~dst:my_ip flat 0
                 h.Ldlp_packet.Udp.length ->
          let payload =
            Bytes.sub flat off (h.Ldlp_packet.Udp.length - off)
          in
          if Ldlp_dnslite.Server.handle dns payload <> None then
            incr dns_replies
        | _ -> ());
        [ Layer.Consume ])
  in
  Graphsched.add_layer g tcp;
  Graphsched.add_layer g udp;
  Graphsched.add_layer g ~above:[ "tcp"; "udp" ] ip;
  Graphsched.add_layer g ~above:[ "ip" ] ether;
  let inject m =
    Graphsched.inject g ~into:"ether"
      (Msg.make ~size:(Ldlp_buf.Mbuf.length m) (m, my_ip, 0))
  in
  (* Interleave DNS queries and TCP SYNs. *)
  List.iter2
    (fun q s ->
      inject q;
      inject s)
    queries segments;
  Graphsched.run g;
  let s = Graphsched.stats g in
  (!tcp_replies, !dns_replies, s, Ldlp_tcpmini.Pcb.connections pcbs)

let test_demux_host_tcp_and_dns () =
  let my_ip = Ldlp_packet.Addr.Ipv4.of_string "10.5.0.1" in
  let make_inputs () =
    let dns_frame i =
      (* Reuse the dnshost frame builder via a throwaway host config. *)
      let h =
        Ldlp_dnslite.Dnshost.create ~pool
          ~mac:(Ldlp_packet.Addr.Mac.of_string "02:00:00:00:00:01")
          ~ip:my_ip
          ~server:(Ldlp_dnslite.Server.create ~zone:[] ())
          ()
      in
      Ldlp_dnslite.Dnshost.client_query h ~src_ip:src_ip ~src_port:(2000 + i)
        (Ldlp_dnslite.Dnsmsg.query ~id:i
           (Ldlp_dnslite.Name.of_string "a.example"))
    in
    let syn_frame i =
      let seg =
        Ldlp_tcpmini.Tcp_output.build ~src:src_ip ~dst:my_ip
          ~src_port:(3000 + i) ~dst_port:80 ~seq:50l ~ack:0l
          ~flags:Ldlp_packet.Tcp.flag_syn ~window:8760 ()
      in
      let m = Ldlp_buf.Mbuf.of_bytes pool seg in
      let m =
        Ldlp_packet.Ipv4.encapsulate m
          {
            Ldlp_packet.Ipv4.ihl = 5;
            tos = 0;
            total_length = 0;
            ident = i;
            dont_fragment = true;
            more_fragments = false;
            fragment_offset = 0;
            ttl = 64;
            protocol = Ldlp_packet.Ipv4.proto_tcp;
            src = src_ip;
            dst = my_ip;
          }
      in
      Ldlp_packet.Ethernet.encapsulate m
        {
          Ldlp_packet.Ethernet.dst = Ldlp_packet.Addr.Mac.of_string "02:00:00:00:00:01";
          src = Ldlp_packet.Addr.Mac.of_string "02:00:00:00:00:aa";
          ethertype = Ldlp_packet.Ethernet.ethertype_ipv4;
        }
    in
    (List.init 10 dns_frame, List.init 10 syn_frame)
  in
  let run discipline =
    let queries, syns = make_inputs () in
    demux_host ~discipline queries syns
  in
  let t1, d1, s1, conns1 = run Ldlp_core.Sched.Conventional in
  checki "10 syn-acks" 10 t1;
  checki "10 dns replies" 10 d1;
  checki "10 connections" 10 conns1;
  checki "no misroutes" 0 s1.Ldlp_core.Graphsched.misrouted;
  let t2, d2, _, conns2 =
    run (Ldlp_core.Sched.Ldlp Ldlp_core.Batch.paper_default)
  in
  checki "ldlp same tcp" t1 t2;
  checki "ldlp same dns" d1 d2;
  checki "ldlp same connections" conns1 conns2

(* ---------- Two-switch signalling network ---------- *)

let test_two_switch_call () =
  let open Ldlp_sigproto in
  (* Switch A: addresses "b:*" go out port 9 (the trunk).  Switch B:
     everything terminates locally on port 0. *)
  let sw_a = Switch.create ~routes:[ ("b:", 9) ] ~local_port:0 () in
  let sw_b = Switch.create ~routes:[] ~local_port:0 () in
  (* The wire: A port 9 <-> B port 1; the caller is A port 1; the callee
     host answers whatever arrives at B port 0. *)
  let to_caller = ref [] in
  let rec pump = function
    | [] -> ()
    | (`A, port, msg) :: rest ->
      let out = Switch.handle sw_a ~port msg in
      let forwarded =
        List.concat_map
          (fun (p, m) ->
            if p = 9 then [ (`B, 1, m) ]
            else begin
              to_caller := m :: !to_caller;
              []
            end)
          out
      in
      pump (rest @ forwarded)
    | (`B, port, msg) :: rest ->
      let out = Switch.handle sw_b ~port msg in
      let forwarded =
        List.concat_map
          (fun (p, m) ->
            if p = 1 then [ (`A, 9, m) ]
            else begin
              (* Callee host: accept incoming SETUP by answering CONNECT,
                 ack CONNECT_ACK silently. *)
              match m.Sigmsg.typ with
              | Sigmsg.Setup ->
                [
                  ( `B,
                    0,
                    Sigmsg.v ~from_originator:false
                      ~call_ref:m.Sigmsg.call_ref Sigmsg.Connect [] );
                ]
              | Sigmsg.Release ->
                [
                  ( `B,
                    0,
                    Sigmsg.v ~from_originator:false
                      ~call_ref:m.Sigmsg.call_ref Sigmsg.Release_complete [] );
                ]
              | _ -> []
            end)
          out
      in
      pump (rest @ forwarded)
  in
  let setup =
    Sigmsg.v ~call_ref:11 Sigmsg.Setup [ Ie.called_party "b:7"; Ie.qos 0 ]
  in
  pump [ (`A, 1, setup) ];
  (* The caller must see CALL_PROCEEDING then CONNECT; both switches hold
     one active call. *)
  let types = List.rev_map (fun m -> m.Sigmsg.typ) !to_caller in
  check "caller got proceeding" true (List.mem Sigmsg.Call_proceeding types);
  check "caller got connect" true (List.mem Sigmsg.Connect types);
  checki "switch A active" 1 (Switch.active_calls sw_a);
  checki "switch B active" 1 (Switch.active_calls sw_b);
  (* Caller acks the connect to finish, then releases. *)
  pump [ (`A, 1, Sigmsg.v ~call_ref:11 Sigmsg.Connect_ack []) ];
  checki "A connected" 1 (Switch.stats sw_a).Switch.calls_connected;
  pump [ (`A, 1, Sigmsg.v ~call_ref:11 Sigmsg.Release []) ];
  checki "A table empty after release" 0 (Switch.active_calls sw_a);
  checki "B table empty after release" 0 (Switch.active_calls sw_b)

(* ---------- Analytic model vs cycle-accurate simulation ---------- *)

let test_blocking_model_matches_simulation () =
  let params = { Ldlp_model.Params.quick with Ldlp_model.Params.runs = 3 } in
  let stack =
    {
      Ldlp_core.Blocking.layer_code_bytes = List.init 5 (fun _ -> 6144);
      layer_data_bytes = List.init 5 (fun _ -> 256);
      msg_bytes = 552;
      cycles_per_msg = 5 * 1652;
    }
  in
  let analytic =
    Ldlp_core.Blocking.misses_per_msg Ldlp_core.Blocking.paper_machine stack
      ~batch:1
  in
  let make_source rng =
    Ldlp_traffic.Source.limit_time
      (Ldlp_traffic.Poisson.source ~rng ~rate:2000.0 ())
      params.Ldlp_model.Params.seconds
  in
  let sim =
    Ldlp_model.Simrun.run_avg ~params
      ~discipline:Ldlp_model.Simrun.Conventional ~seed:5 ~make_source ()
  in
  let simulated =
    sim.Ldlp_model.Simrun.imisses_per_msg +. sim.Ldlp_model.Simrun.dmisses_per_msg
  in
  check
    (Printf.sprintf "simulated %.0f within 15%% of analytic %.0f" simulated
       analytic)
    true
    (Float.abs (simulated -. analytic) < 0.15 *. analytic)

(* ---------- Parallel sweep engine determinism ---------- *)

let test_sweep_selftest_three_domains () =
  (* PR 1's selftest ran at 2 domains; 3 domains exercises uneven work
     splits (3 rate points over 3 workers, 2 clock points over 3). *)
  check "3-domain sweeps identical to sequential" true
    (Ldlp_model.Figures.sweep_selftest ~domains:3 ())

let suite =
  [
    Alcotest.test_case "tcp path in order" `Quick test_tcp_path_in_order;
    Alcotest.test_case "tcp path ldlp = conventional" `Quick
      test_tcp_path_ldlp_same_result;
    Alcotest.test_case "tcp path corruption" `Quick
      test_tcp_path_corrupted_segment_dropped;
    Alcotest.test_case "tcp path mixed traffic" `Quick test_tcp_path_mixed_traffic;
    Alcotest.test_case "demux host tcp+dns" `Quick test_demux_host_tcp_and_dns;
    Alcotest.test_case "two-switch call" `Quick test_two_switch_call;
    Alcotest.test_case "analytic vs simulated" `Slow
      test_blocking_model_matches_simulation;
    Alcotest.test_case "sweep selftest, 3 domains" `Slow
      test_sweep_selftest_three_domains;
  ]
