let () =
  Alcotest.run "ldlp"
    [
      ("sim", Test_sim.suite);
      ("par", Test_par.suite);
      ("cache", Test_cache.suite);
      ("buf", Test_buf.suite);
      ("packet", Test_packet.suite);
      ("traffic", Test_traffic.suite);
      ("trace", Test_trace.suite);
      ("core", Test_core.suite);
      ("rqueue", Test_rqueue.suite);
      ("msgpool", Test_msgpool.suite);
      ("engine", Test_engine.suite);
      ("graphsched", Test_graphsched.suite);
      ("nic", Test_nic.suite);
      ("flowtable", Test_flowtable.suite);
      ("tcpmini", Test_tcpmini.suite);
      ("sigproto", Test_sigproto.suite);
      ("uni", Test_uni.suite);
      ("dnslite", Test_dnslite.suite);
      ("model", Test_model.suite);
      ("netsim", Test_netsim.suite);
      ("fault", Test_fault.suite);
      ("soak", Test_soak.suite);
      ("obs", Test_obs.suite);
      ("report", Test_report.suite);
      ("integration", Test_integration.suite);
      ("check", Test_check.suite);
      ("mesh", Test_mesh.suite);
      ("shard", Test_shard.suite);
    ]
