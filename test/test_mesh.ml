(* Tests for the many-host mesh simulator and its topology generator.

   The battery leans on two invariants the mesh is designed around:
   every run is a pure function of [(config, seed)] — so two runs (at
   any parallel domain count) must be byte-identical — and the wire
   clock is discipline-invariant — so the conv/LDLP/duplex wirings must
   agree on every delivery and every cause-ledger entry. *)

open Ldlp_mesh

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Topology generator.                                                 *)
(* ------------------------------------------------------------------ *)

(* Valid (hosts, degree, seed) triples: degree < hosts and an even
   degree sum, the feasibility conditions [generate] enforces. *)
let arb_topo_params =
  let gen =
    QCheck.Gen.(
      int_range 4 40 >>= fun hosts0 ->
      int_range 2 5 >>= fun degree0 ->
      int_range 0 10_000 >>= fun seed ->
      let degree = min degree0 (hosts0 - 1) in
      let hosts = if hosts0 * degree mod 2 = 1 then hosts0 + 1 else hosts0 in
      return (hosts, degree, seed))
  in
  QCheck.make
    ~print:(fun (h, d, s) -> Printf.sprintf "hosts=%d degree=%d seed=%d" h d s)
    gen

let prop_topology_well_formed =
  QCheck.Test.make ~name:"topology: connected, degree-exact, canonical"
    ~count:150 arb_topo_params (fun (hosts, degree, seed) ->
      let t = Topology.generate ~hosts ~degree ~seed in
      let degs = Array.make hosts 0 in
      Array.iter
        (fun (u, v) ->
          degs.(u) <- degs.(u) + 1;
          degs.(v) <- degs.(v) + 1)
        t.Topology.edges;
      Array.for_all (( = ) degree) degs
      && Array.length t.Topology.edges = hosts * degree / 2
      && Array.for_all (fun (u, v) -> u < v) t.Topology.edges
      && Topology.is_connected t)

let prop_topology_deterministic =
  QCheck.Test.make ~name:"topology: same seed, same graph" ~count:100
    arb_topo_params (fun (hosts, degree, seed) ->
      let a = Topology.generate ~hosts ~degree ~seed in
      let b = Topology.generate ~hosts ~degree ~seed in
      a.Topology.edges = b.Topology.edges)

let prop_topology_domain_invariant =
  QCheck.Test.make ~name:"topology: identical edge set at 1 vs 3 domains"
    ~count:40 arb_topo_params (fun (hosts, degree, seed) ->
      (* Generate the same graph inside worker domains and sequentially;
         parallelism must not leak into the seeded draw. *)
      let par =
        Ldlp_par.Pool.map ~domains:3
          (fun _ -> (Topology.generate ~hosts ~degree ~seed).Topology.edges)
          [ 0; 1; 2 ]
      in
      let seq = (Topology.generate ~hosts ~degree ~seed).Topology.edges in
      List.for_all (( = ) seq) par)

let prop_directed_index =
  QCheck.Test.make ~name:"topology: directed_index is a 2E bijection"
    ~count:60 arb_topo_params (fun (hosts, degree, seed) ->
      let t = Topology.generate ~hosts ~degree ~seed in
      Array.to_list t.Topology.edges
      |> List.mapi (fun p (u, v) ->
             Topology.directed_index t ~src:u ~dst:v = (2 * p)
             && Topology.directed_index t ~src:v ~dst:u = (2 * p) + 1)
      |> List.for_all Fun.id)

let test_topology_rejects_infeasible () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  checkb "degree >= hosts" true (raises (fun () ->
      ignore (Topology.generate ~hosts:4 ~degree:4 ~seed:1)));
  checkb "odd degree sum" true (raises (fun () ->
      ignore (Topology.generate ~hosts:5 ~degree:3 ~seed:1)));
  checkb "degree zero disconnects" true (raises (fun () ->
      ignore (Topology.generate ~hosts:4 ~degree:0 ~seed:1)))

(* ------------------------------------------------------------------ *)
(* Mesh determinism: byte-identical renders.                           *)
(* ------------------------------------------------------------------ *)

let small = Mesh.config ~hosts:16 ~degree:3 ~seed:1996 ~broadcasts:4 ()

let figure ?domains cfg =
  let pristine = Mesh.compare_spread ?domains cfg in
  let chaos = Mesh.compare_spread ?domains { cfg with Mesh.plan = Mesh.chaos_plan } in
  let storms = Mesh.compare_storm ?domains cfg in
  Mesh.render cfg ~pristine ~chaos ~storms

let test_render_byte_identical () =
  Alcotest.(check string)
    "two same-seed runs render identically" (figure ~domains:1 small)
    (figure ~domains:1 small)

let test_render_domain_invariant () =
  Alcotest.(check string)
    "1-domain and 3-domain runs render identically" (figure ~domains:1 small)
    (figure ~domains:3 small)

let test_render_seed_sensitive () =
  checkb "a different seed changes the figure" true
    (figure ~domains:1 small
    <> figure ~domains:1 { small with Mesh.seed = 1997 })

(* ------------------------------------------------------------------ *)
(* Conservation + equivalence oracles.                                 *)
(* ------------------------------------------------------------------ *)

let oracle_ok what cfg =
  match Ldlp_check.Mesh_oracle.run ~domains:1 cfg with
  | Ok n -> checkb (what ^ ": some checks ran") true (n > 0)
  | Error d ->
    Alcotest.failf "%s: %s" what
      (Format.asprintf "%a" Ldlp_check.Mesh_oracle.pp_divergence d)

let test_oracle_pristine () = oracle_ok "pristine" small

let test_oracle_chaos () =
  oracle_ok "chaos" { small with Mesh.plan = Mesh.chaos_plan }

let prop_oracle_over_seeds =
  QCheck.Test.make ~name:"oracle holds over random seeds (chaos plan)"
    ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let cfg =
        Mesh.config ~hosts:12 ~degree:3 ~seed ~broadcasts:3
          ~plan:Mesh.chaos_plan ()
      in
      match Ldlp_check.Mesh_oracle.run ~domains:1 cfg with
      | Ok _ -> true
      | Error d ->
        QCheck.Test.fail_reportf "seed %d: %a" seed
          Ldlp_check.Mesh_oracle.pp_divergence d)

let test_pristine_full_reach () =
  let s = Mesh.run_spread ~wiring:Mesh.Duplex small in
  checki "every broadcast reaches every other host" small.Mesh.broadcasts
    s.Mesh.reach_full;
  checki "reach = broadcasts * (hosts - 1)"
    (small.Mesh.broadcasts * (small.Mesh.hosts - 1))
    s.Mesh.reach;
  checkb "pool empty at quiescence" true s.Mesh.leak_free

let test_ldlp_batches_beat_conv () =
  let conv = Mesh.run_spread ~wiring:Mesh.Conv small in
  let ldlp = Mesh.run_spread ~wiring:Mesh.Ldlp small in
  checkb "LDLP reloads below conventional" true
    (ldlp.Mesh.reloads < conv.Mesh.reloads);
  checkb "LDLP batches above 1" true (ldlp.Mesh.mean_batch > 1.0);
  checkb "LDLP modeled CPU below conventional" true
    (ldlp.Mesh.cpu_seconds < conv.Mesh.cpu_seconds)

(* ------------------------------------------------------------------ *)
(* Call storm.                                                         *)
(* ------------------------------------------------------------------ *)

let test_storm_completes () =
  List.iter
    (fun wiring ->
      let t = Mesh.run_storm ~wiring small in
      let name = Mesh.wiring_name wiring in
      checki (name ^ ": all calls complete") t.Mesh.calls_requested
        t.Mesh.calls_completed;
      checki (name ^ ": no failures") 0 t.Mesh.calls_failed;
      checkb (name ^ ": conserved") true t.Mesh.t_conserved;
      checkb (name ^ ": leak-free") true t.Mesh.t_leak_free;
      checkb (name ^ ": positive cpu rate") true (Mesh.storm_cpu_rate t > 0.0))
    Mesh.all_wirings

let test_storm_deterministic () =
  let a = Mesh.run_storm ~wiring:Mesh.Duplex small in
  let b = Mesh.run_storm ~wiring:Mesh.Duplex small in
  checkb "same storm twice" true (a = b)

let test_storm_sharded_equals_single () =
  (* The sharded merge must reproduce the single-domain storm exactly —
     every count, cause, the wire clock and the host-order CPU sum. *)
  List.iter
    (fun wiring ->
      let base = Mesh.run_storm ~wiring small in
      List.iter
        (fun shards ->
          let sh = Mesh.run_storm_sharded ~wiring ~shards small in
          checkb
            (Printf.sprintf "%s shards=%d equals shards=1"
               (Mesh.wiring_name wiring) shards)
            true
            (sh.Mesh.ss_storm = base);
          checki
            (Printf.sprintf "%s shards=%d cpu vector length"
               (Mesh.wiring_name wiring) shards)
            shards
            (Array.length sh.Mesh.ss_cpu_per_shard);
          checkb "per-shard cpu sums to the storm's" true
            (Float.abs
               (Array.fold_left ( +. ) 0.0 sh.Mesh.ss_cpu_per_shard
               -. base.Mesh.storm_cpu_seconds)
            < 1e-9))
        [ 1; 2; 3 ])
    [ Mesh.Ldlp; Mesh.Duplex ];
  (* Sharding also holds under active fault injection. *)
  let chaotic = { small with Mesh.plan = Mesh.chaos_plan } in
  let base = Mesh.run_storm ~wiring:Mesh.Duplex chaotic in
  let sh = Mesh.run_storm_sharded ~wiring:Mesh.Duplex ~shards:3 chaotic in
  checkb "chaos storm shards equal" true (sh.Mesh.ss_storm = base)

(* ------------------------------------------------------------------ *)
(* Crash/restart recovery.                                             *)
(* ------------------------------------------------------------------ *)

let crash_cfg =
  Mesh.config ~hosts:16 ~degree:3 ~seed:1996 ~broadcasts:4
    ~lifecycle:
      (Ldlp_fault.Plan.lifecycle ~victims:1.0 ~episodes:2 ~min_outage:0.002
         ~mean_outage:0.01 ~seed:7 ~hosts:16 ~horizon:0.02 ())
    ()

let test_recovery_eventual_completion () =
  List.iter
    (fun wiring ->
      let t = Mesh.run_storm ~wiring ~calls_per_pair:6 crash_cfg in
      let name = Mesh.wiring_name wiring in
      checkb (name ^ ": complete-or-abandoned") true (Mesh.storm_complete t);
      checkb (name ^ ": conserved") true t.Mesh.t_conserved;
      checkb (name ^ ": leak-free across crashes") true t.Mesh.t_leak_free;
      checki (name ^ ": legacy failure path unused") 0 t.Mesh.calls_failed)
    Mesh.all_wirings

let test_recovery_exercises_crashes () =
  (* The chosen plan must actually kill traffic, or the battery proves
     nothing: at least one wire emission hits a dead host or dies parked,
     and at least one attempt is retried. *)
  let t = Mesh.run_storm ~wiring:Mesh.Duplex ~calls_per_pair:6 crash_cfg in
  checkb "some frames crashed or were lost parked" true
    (t.Mesh.t_causes.Mesh.crashed + t.Mesh.t_causes.Mesh.lost_in_crash > 0);
  checkb "some attempts retried" true (t.Mesh.calls_retried > 0);
  checkb "retry amplification > 1" true
    (Mesh.storm_retry_amplification t > 1.0);
  checkb "goodput positive" true (Mesh.storm_goodput t > 0.0)

let test_recovery_cross_wiring_equivalent () =
  (* The retry timeline depends only on wire-clock events and private
     per-pair RNG streams, so every wiring must agree on who completed,
     who was abandoned and how many attempts it took. *)
  let storms =
    List.map
      (fun w -> Mesh.run_storm ~wiring:w ~calls_per_pair:6 crash_cfg)
      Mesh.all_wirings
  in
  match storms with
  | base :: rest ->
    List.iter
      (fun t ->
        let name = Mesh.wiring_name t.Mesh.t_wiring in
        checkb (name ^ ": pair_done matches conv") true
          (t.Mesh.pair_done = base.Mesh.pair_done);
        checkb (name ^ ": pair_abandoned matches conv") true
          (t.Mesh.pair_abandoned = base.Mesh.pair_abandoned);
        checki (name ^ ": retries match conv") base.Mesh.calls_retried
          t.Mesh.calls_retried;
        checki (name ^ ": deferrals match conv") base.Mesh.setups_deferred
          t.Mesh.setups_deferred;
        checkb (name ^ ": ttr samples match conv") true
          (t.Mesh.ttr_samples = base.Mesh.ttr_samples))
      rest
  | [] -> Alcotest.fail "no wirings"

let test_recovery_deterministic () =
  let a = Mesh.run_storm ~wiring:Mesh.Ldlp ~calls_per_pair:6 crash_cfg in
  let b = Mesh.run_storm ~wiring:Mesh.Ldlp ~calls_per_pair:6 crash_cfg in
  checkb "same crash storm twice" true (a = b)

let test_recovery_sharded_equals_single () =
  List.iter
    (fun shards ->
      let base = Mesh.run_storm ~wiring:Mesh.Duplex ~calls_per_pair:6 crash_cfg in
      let sh =
        Mesh.run_storm_sharded ~wiring:Mesh.Duplex ~shards ~calls_per_pair:6
          crash_cfg
      in
      checkb
        (Printf.sprintf "crash storm shards=%d equals shards=1" shards)
        true
        (sh.Mesh.ss_storm = base))
    [ 1; 2; 3 ]

let test_recovery_on_pristine_all_complete () =
  (* An explicit policy with no crashes must behave like a pristine
     storm: nothing abandoned, nothing retried, everything done. *)
  let t =
    Mesh.run_storm ~wiring:Mesh.Duplex ~recovery:Mesh.default_recovery small
  in
  checki "all calls complete" t.Mesh.calls_requested t.Mesh.calls_completed;
  checki "nothing abandoned" 0 t.Mesh.calls_abandoned;
  checki "nothing retried" 0 t.Mesh.calls_retried;
  checkb "complete" true (Mesh.storm_complete t)

(* ------------------------------------------------------------------ *)
(* BENCH_mesh.json schema roundtrip.                                   *)
(* ------------------------------------------------------------------ *)

let sample_rows =
  [
    {
      Ldlp_report.Bench_json.mr_hosts = 64;
      mr_wiring = "ldlp+chaos";
      mr_delivered = 1008;
      mr_p50_s = 1.26e-3;
      mr_p90_s = 2.0e-3;
      mr_p99_s = 2.51e-3;
      mr_max_s = 3.2e-3;
      mr_mean_s = 1.3e-3;
      mr_reloads = 3988;
      mr_mean_batch = 3.2;
      mr_cpu_s = 0.235;
      mr_ok = true;
    };
  ]

let sample_storms =
  [
    {
      Ldlp_report.Bench_json.ms_hosts = 64;
      ms_wiring = "duplex";
      ms_pairs = 8;
      ms_calls = 32;
      ms_completed = 32;
      ms_wire_pairs_per_s = 10847.0;
      ms_cpu_us_per_pair = 1213.6;
      ms_cpu_pairs_per_s = 824.0;
      ms_ok = true;
    };
  ]

let test_mesh_json_roundtrip () =
  let json =
    Ldlp_report.Bench_json.render_mesh ~seed:1996 ~degree:4
      ~goal_pairs_per_s:10_000.0 ~spread:sample_rows ~storm:sample_storms
  in
  match Ldlp_report.Bench_json.parse_mesh json with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok doc ->
    checki "seed" 1996 doc.Ldlp_report.Bench_json.md_seed;
    checki "degree" 4 doc.Ldlp_report.Bench_json.md_degree;
    Alcotest.(check (float 1e-9))
      "goal" 10_000.0 doc.Ldlp_report.Bench_json.md_goal_pairs_per_s;
    (match (doc.Ldlp_report.Bench_json.mesh_rows, sample_rows) with
    | [ got ], [ want ] ->
      checkb "spread row survives" true (got = want)
    | _ -> Alcotest.fail "row count");
    (match (doc.Ldlp_report.Bench_json.mesh_storms, sample_storms) with
    | [ got ], [ want ] -> checkb "storm row survives" true (got = want)
    | _ -> Alcotest.fail "storm count")

let test_mesh_json_rejects_bad () =
  let is_err = function Error _ -> true | Ok _ -> false in
  checkb "empty doc rejected" true
    (is_err (Ldlp_report.Bench_json.parse_mesh "{}"));
  checkb "wrong schema tag rejected" true
    (is_err
       (Ldlp_report.Bench_json.parse_mesh
          {|{"schema": "ldlp-bench-soak/1", "seed": 1, "degree": 4,
             "goal_pairs_per_s": 10000, "spread": [], "storm": []}|}));
  let bad_row =
    Ldlp_report.Bench_json.render_mesh ~seed:1 ~degree:4
      ~goal_pairs_per_s:10_000.0
      ~spread:
        [ { (List.hd sample_rows) with Ldlp_report.Bench_json.mr_wiring = "" } ]
      ~storm:[]
  in
  checkb "empty wiring rejected" true
    (is_err (Ldlp_report.Bench_json.parse_mesh bad_row))

(* ------------------------------------------------------------------ *)
(* BENCH_recovery.json schema roundtrip.                               *)
(* ------------------------------------------------------------------ *)

let sample_recovery =
  [
    {
      Ldlp_report.Bench_json.rr_wiring = "duplex+v100";
      rr_crash_episodes = 88;
      rr_calls = 24;
      rr_completed = 24;
      rr_abandoned = 0;
      rr_retried = 9;
      rr_deferred = 2;
      rr_goodput_pairs_per_s = 1103.0;
      rr_retry_amplification = 1.375;
      rr_ttr_p50_s = 9.03e-3;
      rr_ttr_p99_s = 9.5e-3;
      rr_ok = true;
    };
  ]

let test_recovery_json_roundtrip () =
  let json =
    Ldlp_report.Bench_json.render_recovery ~seed:1996 ~hosts:32 ~degree:4
      sample_recovery
  in
  match Ldlp_report.Bench_json.parse_recovery json with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok doc ->
    checki "seed" 1996 doc.Ldlp_report.Bench_json.rd_seed;
    checki "hosts" 32 doc.Ldlp_report.Bench_json.rd_hosts;
    checki "degree" 4 doc.Ldlp_report.Bench_json.rd_degree;
    (match (doc.Ldlp_report.Bench_json.recovery_rows, sample_recovery) with
    | [ got ], [ want ] -> checkb "recovery row survives" true (got = want)
    | _ -> Alcotest.fail "row count")

let test_recovery_json_rejects_bad () =
  let is_err = function Error _ -> true | Ok _ -> false in
  checkb "empty doc rejected" true
    (is_err (Ldlp_report.Bench_json.parse_recovery "{}"));
  checkb "wrong schema tag rejected" true
    (is_err
       (Ldlp_report.Bench_json.parse_recovery
          {|{"schema": "ldlp-bench-mesh/1", "seed": 1, "hosts": 32,
             "degree": 4, "rows": []}|}));
  let forged f =
    Ldlp_report.Bench_json.render_recovery ~seed:1 ~hosts:32 ~degree:4
      [ f (List.hd sample_recovery) ]
  in
  checkb "overfull outcome rejected" true
    (is_err
       (Ldlp_report.Bench_json.parse_recovery
          (forged (fun r ->
               { r with Ldlp_report.Bench_json.rr_completed = 20; rr_abandoned = 5 }))));
  checkb "amplification below one rejected" true
    (is_err
       (Ldlp_report.Bench_json.parse_recovery
          (forged (fun r ->
               { r with Ldlp_report.Bench_json.rr_retry_amplification = 0.5 }))));
  checkb "empty wiring rejected" true
    (is_err
       (Ldlp_report.Bench_json.parse_recovery
          (forged (fun r -> { r with Ldlp_report.Bench_json.rr_wiring = "" }))))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_topology_well_formed;
    QCheck_alcotest.to_alcotest prop_topology_deterministic;
    QCheck_alcotest.to_alcotest prop_topology_domain_invariant;
    QCheck_alcotest.to_alcotest prop_directed_index;
    Alcotest.test_case "topology rejects infeasible params" `Quick
      test_topology_rejects_infeasible;
    Alcotest.test_case "render is byte-identical across runs" `Quick
      test_render_byte_identical;
    Alcotest.test_case "render is domain-count invariant" `Quick
      test_render_domain_invariant;
    Alcotest.test_case "render is seed-sensitive" `Quick
      test_render_seed_sensitive;
    Alcotest.test_case "oracle: pristine" `Quick test_oracle_pristine;
    Alcotest.test_case "oracle: chaos" `Quick test_oracle_chaos;
    QCheck_alcotest.to_alcotest prop_oracle_over_seeds;
    Alcotest.test_case "pristine spread reaches everyone" `Quick
      test_pristine_full_reach;
    Alcotest.test_case "LDLP batches beat conventional" `Quick
      test_ldlp_batches_beat_conv;
    Alcotest.test_case "call storm completes on every wiring" `Quick
      test_storm_completes;
    Alcotest.test_case "call storm is deterministic" `Quick
      test_storm_deterministic;
    Alcotest.test_case "sharded storm equals single-domain" `Quick
      test_storm_sharded_equals_single;
    Alcotest.test_case "recovery: every call completes or is abandoned" `Quick
      test_recovery_eventual_completion;
    Alcotest.test_case "recovery: crash plan injects real failures" `Quick
      test_recovery_exercises_crashes;
    Alcotest.test_case "recovery: wirings agree on outcome multiset" `Quick
      test_recovery_cross_wiring_equivalent;
    Alcotest.test_case "recovery: crash storm is deterministic" `Quick
      test_recovery_deterministic;
    Alcotest.test_case "recovery: sharded crash storm equals single" `Quick
      test_recovery_sharded_equals_single;
    Alcotest.test_case "recovery: pristine policy run completes all" `Quick
      test_recovery_on_pristine_all_complete;
    Alcotest.test_case "BENCH_mesh.json roundtrip" `Quick
      test_mesh_json_roundtrip;
    Alcotest.test_case "BENCH_mesh.json rejects bad docs" `Quick
      test_mesh_json_rejects_bad;
    Alcotest.test_case "BENCH_recovery.json roundtrip" `Quick
      test_recovery_json_roundtrip;
    Alcotest.test_case "BENCH_recovery.json rejects bad docs" `Quick
      test_recovery_json_rejects_bad;
  ]
