(* Tests for the Section 4 synthetic evaluation model: parameters, the
   checksum study (Figure 8), and the cycle-accurate scheduler simulation
   (Figures 5-7 shapes). *)

open Ldlp_model

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* ---------- Params ---------- *)

let test_params_paper_cycles () =
  (* 1652 cycles per layer for the 552-byte message. *)
  checki "cycles per layer" 1652
    (Params.cycles_per_layer Params.paper ~msg_bytes:552)

let test_params_scale_code () =
  let p = Params.scale_code Params.paper 0.5 in
  checki "halved" 3072 p.Params.layer_code_bytes;
  check "bad factor raises" true
    (try
       ignore (Params.scale_code Params.paper 0.0);
       false
     with Invalid_argument _ -> true)

(* ---------- Cksum study (Figure 8) ---------- *)

let test_cksum_study_crossover () =
  let x = Cksum_study.cold_crossover () in
  check (Printf.sprintf "cold crossover %d near 900" x) true (x >= 700 && x <= 1100)

let test_cksum_study_warm_elaborate_wins () =
  (* Warm cache: the elaborate routine wins at nearly all sizes. *)
  List.iter
    (fun n ->
      check
        (Printf.sprintf "warm elaborate faster at %d" n)
        true
        (Cksum_study.time ~routine:`Elaborate ~cache:`Warm ~msg_bytes:n
        < Cksum_study.time ~routine:`Simple ~cache:`Warm ~msg_bytes:n))
    [ 128; 256; 512; 1000 ]

let test_cksum_study_cold_simple_wins_small () =
  List.iter
    (fun n ->
      check
        (Printf.sprintf "cold simple faster at %d" n)
        true
        (Cksum_study.time ~routine:`Simple ~cache:`Cold ~msg_bytes:n
        < Cksum_study.time ~routine:`Elaborate ~cache:`Cold ~msg_bytes:n))
    [ 128; 256; 512 ]

let test_cksum_study_fill_costs () =
  let fe = Cksum_study.fill_cost ~routine:`Elaborate ~msg_bytes:40 in
  let fs = Cksum_study.fill_cost ~routine:`Simple ~msg_bytes:40 in
  (* Paper annotations: 426 and 176 cycles. *)
  check (Printf.sprintf "elaborate fill %.0f ~ 426" fe) true (fe > 380.0 && fe < 480.0);
  check (Printf.sprintf "simple fill %.0f ~ 176" fs) true (fs > 140.0 && fs < 220.0)

let test_cksum_study_series () =
  let s = Cksum_study.series ~step:100 ~max_bytes:1000 () in
  checki "11 points" 11 (List.length s);
  check "warm <= cold everywhere" true
    (List.for_all
       (fun p ->
         p.Cksum_study.elaborate_warm <= p.Cksum_study.elaborate_cold
         && p.Cksum_study.simple_warm <= p.Cksum_study.simple_cold)
       s)

(* ---------- Simrun ---------- *)

let tiny = { Params.quick with Params.runs = 2; seconds = 0.2 }

let make_source rate params rng =
  Ldlp_traffic.Source.limit_time
    (Ldlp_traffic.Poisson.source ~rng ~rate ~size:params.Params.msg_bytes ())
    params.Params.seconds

let run d rate =
  Simrun.run_avg ~params:tiny ~discipline:d ~seed:3
    ~make_source:(make_source rate tiny) ()

let test_conventional_misses_flat () =
  (* Conventional: ~1018 lines fetched per message at any load (960 code +
     40 layer data + 18 message), minus a little for lucky conflicts. *)
  let low = run Simrun.Conventional 1000.0 in
  let high = run Simrun.Conventional 8000.0 in
  let near x = x > 850.0 && x < 1030.0 in
  check
    (Printf.sprintf "low-rate I+D %.0f"
       (low.Simrun.imisses_per_msg +. low.Simrun.dmisses_per_msg))
    true
    (near (low.Simrun.imisses_per_msg +. low.Simrun.dmisses_per_msg));
  check "flat across load" true
    (Float.abs (high.Simrun.imisses_per_msg -. low.Simrun.imisses_per_msg)
    < 0.1 *. low.Simrun.imisses_per_msg)

let test_ldlp_misses_fall_with_load () =
  let low = run Simrun.Ldlp 1000.0 in
  let high = run Simrun.Ldlp 9000.0 in
  check
    (Printf.sprintf "I misses fall: %.0f -> %.0f" low.Simrun.imisses_per_msg
       high.Simrun.imisses_per_msg)
    true
    (high.Simrun.imisses_per_msg < 0.2 *. low.Simrun.imisses_per_msg);
  check "D misses rise with batching" true
    (high.Simrun.dmisses_per_msg > low.Simrun.dmisses_per_msg)

let test_ldlp_batch_capped_at_14 () =
  let high = run Simrun.Ldlp 10000.0 in
  check
    (Printf.sprintf "max batch %d <= 14" high.Simrun.max_batch)
    true
    (high.Simrun.max_batch <= 14);
  check "substantial batching" true (high.Simrun.mean_batch > 8.0)

let test_saturation_points () =
  (* The paper's arithmetic: conventional saturates ~3.5k msg/s, LDLP
     reaches ~9.9k. *)
  let conv = run Simrun.Conventional 10000.0 in
  let ldlp = run Simrun.Ldlp 10000.0 in
  check
    (Printf.sprintf "conv throughput %.0f ~ 3.5k" conv.Simrun.throughput)
    true
    (conv.Simrun.throughput > 3000.0 && conv.Simrun.throughput < 4200.0);
  check
    (Printf.sprintf "ldlp throughput %.0f > 9k" ldlp.Simrun.throughput)
    true
    (ldlp.Simrun.throughput > 8800.0);
  check "conventional drops under overload" true (conv.Simrun.dropped > 0);
  check "ldlp keeps up" true (ldlp.Simrun.dropped < conv.Simrun.dropped)

let test_latency_ldlp_beats_conventional_under_load () =
  let conv = run Simrun.Conventional 6000.0 in
  let ldlp = run Simrun.Ldlp 6000.0 in
  check "ldlp latency lower at 6k" true
    (ldlp.Simrun.mean_latency < conv.Simrun.mean_latency /. 5.0)

let test_light_load_equivalence () =
  (* "Under light load, messages will usually be processed singly" —
     latencies within 10%. *)
  let conv = run Simrun.Conventional 500.0 in
  let ldlp = run Simrun.Ldlp 500.0 in
  check "similar light-load latency" true
    (Float.abs (ldlp.Simrun.mean_latency -. conv.Simrun.mean_latency)
    < 0.1 *. conv.Simrun.mean_latency);
  check "no batching at light load" true (ldlp.Simrun.mean_batch < 1.2)

let test_ilp_touches_message_once () =
  (* ILP saves the per-layer message reloads: fewer D misses than
     conventional, same I misses. *)
  let conv = run Simrun.Conventional 2000.0 in
  let ilp = run Simrun.Ilp 2000.0 in
  check "ilp D misses lower" true
    (ilp.Simrun.dmisses_per_msg < conv.Simrun.dmisses_per_msg);
  check "ilp I misses similar" true
    (Float.abs (ilp.Simrun.imisses_per_msg -. conv.Simrun.imisses_per_msg)
    < 0.05 *. conv.Simrun.imisses_per_msg)

let test_clock_override () =
  let slow =
    Simrun.run_avg ~params:tiny ~discipline:Simrun.Conventional ~seed:3
      ~make_source:(make_source 500.0 tiny) ~clock_hz:10e6 ()
  in
  let fast =
    Simrun.run_avg ~params:tiny ~discipline:Simrun.Conventional ~seed:3
      ~make_source:(make_source 500.0 tiny) ~clock_hz:100e6 ()
  in
  check "slower clock, higher latency" true
    (slow.Simrun.mean_latency > 5.0 *. fast.Simrun.mean_latency)

let test_conservation () =
  let r = run Simrun.Ldlp 4000.0 in
  checki "offered = processed + dropped" r.Simrun.offered
    (r.Simrun.processed + r.Simrun.dropped)

(* ---------- Figures plumbing ---------- *)

let test_rate_sweep_structure () =
  let pts =
    Figures.rate_sweep ~params:tiny ~seed:1 ~rates:[ 1000.0; 5000.0 ] ()
  in
  checki "two points" 2 (List.length pts);
  List.iter
    (fun p ->
      check "both disciplines ran" true
        (p.Figures.conv.Simrun.processed > 0 && p.Figures.ldlp.Simrun.processed > 0))
    pts

let test_clock_sweep_structure () =
  (* Bursty ON/OFF traffic needs a longer window than the other tests for
     a stable latency comparison. *)
  let params = { tiny with Params.runs = 2; seconds = 1.0 } in
  let pts =
    Figures.clock_sweep ~params ~seed:1 ~clocks_mhz:[ 10.0; 80.0 ] ()
  in
  checki "two points" 2 (List.length pts);
  let slow = List.hd pts and fast = List.nth pts 1 in
  check "both processed traffic" true
    (slow.Figures.cv.Simrun.processed > 0 && fast.Figures.cv.Simrun.processed > 0);
  check "latency falls with clock" true
    (fast.Figures.cv.Simrun.mean_latency < slow.Figures.cv.Simrun.mean_latency)

let test_ablation_batch_ordering () =
  let pts = Figures.ablation_batch ~params:tiny ~seed:1 ~rate:8000.0 () in
  let get p =
    (List.find (fun b -> b.Figures.policy = p) pts).Figures.r
  in
  let b1 = get (Ldlp_core.Batch.Fixed 1) in
  let b16 = get (Ldlp_core.Batch.Fixed 16) in
  check "bigger batch, fewer I misses" true
    (b16.Simrun.imisses_per_msg < b1.Simrun.imisses_per_msg /. 3.0)

let test_ablation_density () =
  let pts = Figures.ablation_density ~params:tiny ~seed:1 ~rate:6000.0 () in
  let scale s = List.find (fun p -> p.Figures.code_scale = s) pts in
  let small = scale 0.45 and full = scale 1.0 in
  (* Denser code: conventional gets faster (fewer misses). *)
  check "denser code, fewer conv misses" true
    (small.Figures.dc.Simrun.imisses_per_msg
    < 0.6 *. full.Figures.dc.Simrun.imisses_per_msg)

let test_ablation_linesize () =
  let pts = Figures.ablation_linesize ~params:tiny ~seed:1 ~rate:2000.0 () in
  let line n = List.find (fun p -> p.Figures.line_bytes = n) pts in
  let l16 = line 16 and l64 = line 64 in
  (* Larger lines: fewer conventional I misses (Table 3's point). *)
  check "64B lines cut conv misses vs 16B" true
    (l64.Figures.lc.Simrun.imisses_per_msg
    < 0.5 *. l16.Figures.lc.Simrun.imisses_per_msg)

let test_comparison_ilp_structure () =
  let pts = Figures.comparison_ilp ~params:tiny ~seed:2 ~rates:[ 6000.0 ] () in
  match pts with
  | [ p ] ->
    (* ILP matches conventional on I misses, beats it on D misses, and
       LDLP beats both on I misses under load. *)
    check "ilp I ~ conv I" true
      (Float.abs
         (p.Figures.i_ilp.Simrun.imisses_per_msg
         -. p.Figures.i_conv.Simrun.imisses_per_msg)
      < 0.05 *. p.Figures.i_conv.Simrun.imisses_per_msg);
    check "ilp D < conv D" true
      (p.Figures.i_ilp.Simrun.dmisses_per_msg
      < p.Figures.i_conv.Simrun.dmisses_per_msg);
    check "ldlp I < conv I" true
      (p.Figures.i_ldlp.Simrun.imisses_per_msg
      < 0.6 *. p.Figures.i_conv.Simrun.imisses_per_msg)
  | _ -> Alcotest.fail "one point expected"

let test_extension_goal_structure () =
  let g = Figures.extension_goal ~seed:2 ~runs:1 () in
  check "ldlp sustains much more than conventional" true
    (g.Figures.g_ldlp.Simrun.throughput
    > 2.0 *. g.Figures.g_conv.Simrun.throughput);
  check "backoff run has no drops" true
    (g.Figures.g_ldlp_backoff.Simrun.dropped = 0);
  check "backoff latency below saturated latency" true
    (g.Figures.g_ldlp_backoff.Simrun.mean_latency
    < g.Figures.g_ldlp.Simrun.mean_latency)

let test_ablation_granularity_shape () =
  let pts = Figures.ablation_granularity ~seed:4 ~rate:8000.0 ~runs:1 () in
  let get n = (List.find (fun p -> p.Figures.nlayers = n) pts).Figures.gl in
  (* Cache-sized layers keep LDLP effective; a fused 30 KB layer
     self-evicts and loses the entire benefit. *)
  check "5x6KB far better than 1x30KB" true
    ((get 5).Simrun.mean_latency < 0.2 *. (get 1).Simrun.mean_latency);
  check "fused layer misses like conventional" true
    ((get 1).Simrun.imisses_per_msg > 900.0)

let test_parallel_sweep_matches_sequential () =
  (* The ISSUE's determinism guarantee: same seeds, same tables, whatever
     the domain count.  Exercised with 2 and 4 domains. *)
  check "2 domains == sequential" true (Figures.sweep_selftest ~domains:2 ());
  check "4 domains == sequential" true (Figures.sweep_selftest ~domains:4 ())

let test_parallel_rate_sweep_identical () =
  let rates = [ 1000.0; 5000.0 ] in
  let seq = Figures.rate_sweep ~domains:1 ~params:tiny ~seed:1 ~rates () in
  let par = Figures.rate_sweep ~domains:4 ~params:tiny ~seed:1 ~rates () in
  check "structurally equal results" true (seq = par)

let test_extension_tcp_stack () =
  (* Section 6: LDLP is advantageous even for TCP's real footprints. *)
  let pts = Figures.extension_tcp_stack ~seed:5 ~rates:[ 6000.0 ] ~runs:2 () in
  match pts with
  | [ p ] ->
    check "ldlp wins on real TCP footprints" true
      (p.Figures.tl.Simrun.mean_latency
      < 0.2 *. p.Figures.tc.Simrun.mean_latency);
    check "conv misses ~ working set" true
      (p.Figures.tc.Simrun.imisses_per_msg > 850.0)
  | _ -> Alcotest.fail "one point"

let suite =
  [
    Alcotest.test_case "params cycles" `Quick test_params_paper_cycles;
    Alcotest.test_case "params scale code" `Quick test_params_scale_code;
    Alcotest.test_case "fig8 crossover" `Quick test_cksum_study_crossover;
    Alcotest.test_case "fig8 warm elaborate" `Quick test_cksum_study_warm_elaborate_wins;
    Alcotest.test_case "fig8 cold simple" `Quick test_cksum_study_cold_simple_wins_small;
    Alcotest.test_case "fig8 fill costs" `Quick test_cksum_study_fill_costs;
    Alcotest.test_case "fig8 series" `Quick test_cksum_study_series;
    Alcotest.test_case "conv misses flat" `Slow test_conventional_misses_flat;
    Alcotest.test_case "ldlp misses fall" `Slow test_ldlp_misses_fall_with_load;
    Alcotest.test_case "batch capped at 14" `Slow test_ldlp_batch_capped_at_14;
    Alcotest.test_case "saturation points" `Slow test_saturation_points;
    Alcotest.test_case "ldlp wins under load" `Slow
      test_latency_ldlp_beats_conventional_under_load;
    Alcotest.test_case "light load equivalence" `Slow test_light_load_equivalence;
    Alcotest.test_case "ilp message once" `Slow test_ilp_touches_message_once;
    Alcotest.test_case "clock override" `Slow test_clock_override;
    Alcotest.test_case "conservation" `Slow test_conservation;
    Alcotest.test_case "rate sweep structure" `Slow test_rate_sweep_structure;
    Alcotest.test_case "clock sweep structure" `Slow test_clock_sweep_structure;
    Alcotest.test_case "ablation batch" `Slow test_ablation_batch_ordering;
    Alcotest.test_case "ablation density" `Slow test_ablation_density;
    Alcotest.test_case "ablation linesize" `Slow test_ablation_linesize;
    Alcotest.test_case "ilp comparison" `Slow test_comparison_ilp_structure;
    Alcotest.test_case "goal check structure" `Slow test_extension_goal_structure;
    Alcotest.test_case "granularity ablation" `Slow test_ablation_granularity_shape;
    Alcotest.test_case "tcp-footprint extension" `Slow test_extension_tcp_stack;
    Alcotest.test_case "parallel sweep selftest" `Quick
      test_parallel_sweep_matches_sequential;
    Alcotest.test_case "parallel rate sweep identical" `Slow
      test_parallel_rate_sweep_identical;
  ]
