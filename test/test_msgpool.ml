(* State-guard tests for the message pool: the [pool_state] discipline
   that makes double releases loud, the LIFO recycling that keeps the
   hot path cache-warm, and the acquire/release ledger checked against a
   naive reference free-list over random traces. *)

open Ldlp_core

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_double_release_raises () =
  let p = Msg.pool () in
  let m = Msg.acquire p ~arrival:0.0 ~size:64 "x" in
  Msg.release p m;
  checkb "second release raises" true
    (try
       Msg.release p m;
       false
     with Invalid_argument _ -> true);
  (* The failed release must not corrupt the ledger. *)
  let s = Msg.pool_stats p in
  checki "released counted once" 1 s.Msg.p_released;
  checki "outstanding back to zero" 0 s.Msg.p_outstanding

let test_heap_message_release_raises () =
  let p = Msg.pool () in
  checkb "releasing a heap message raises" true
    (try
       Msg.release p (Msg.make "heap");
       false
     with Invalid_argument _ -> true)

let test_recycle_lifo () =
  let p = Msg.pool () in
  let a = Msg.acquire p ~arrival:0.0 ~size:1 "a" in
  let b = Msg.acquire p ~arrival:0.0 ~size:1 "b" in
  Msg.release p b;
  Msg.release p a;
  (* Freelist now holds [a] on top of [b]: strictly LIFO, so the next
     two acquires hand back the same records in reverse release order,
     and no new record is created. *)
  let c = Msg.acquire p ~arrival:1.0 ~size:2 "c" in
  checkb "first reacquire is the last released record" true (c == a);
  let d = Msg.acquire p ~arrival:1.0 ~size:2 "d" in
  checkb "second reacquire is the earlier released record" true (d == b);
  checki "no records created beyond the first two" 2
    (Msg.pool_stats p).Msg.p_created;
  (* Recycled records carry fresh identity and fields. *)
  checkb "fresh id on reacquire" true (c.Msg.id <> a.Msg.id || c == a);
  Alcotest.(check string) "payload overwritten" "c" c.Msg.payload

let test_prefilled_pool () =
  let p = Msg.pool ~capacity:4 ~dummy:"-" () in
  let s0 = Msg.pool_stats p in
  checki "prefill counts as created" 4 s0.Msg.p_created;
  let ms = List.init 4 (fun i -> Msg.acquire p ~arrival:0.0 ~size:i "live") in
  checki "no growth while within capacity" 4 (Msg.pool_stats p).Msg.p_created;
  List.iter (Msg.release p) ms;
  (* With a dummy, release scrubs the payload so dead values are not
     pinned by the freelist. *)
  List.iter
    (fun m -> Alcotest.(check string) "payload reset to dummy" "-" m.Msg.payload)
    ms;
  let extra =
    List.init 5 (fun _ -> Msg.acquire p ~arrival:0.0 ~size:0 "more")
  in
  checki "growth past capacity creates exactly one more" 5
    (Msg.pool_stats p).Msg.p_created;
  List.iter (Msg.release p) extra;
  checki "quiescent outstanding" 0 (Msg.pool_stats p).Msg.p_outstanding

(* Reference model: a naive free-list of plain ids plus four counters,
   driven by the same random trace as the real pool.  Steps are
   [true] = acquire, [false] = release one live message (skipped when
   none is live, so traces stay valid by construction). *)
let prop_ledger_vs_reference =
  QCheck.Test.make ~name:"pool_stats ledger matches a naive reference"
    ~count:300
    QCheck.(list_of_size Gen.(int_range 0 400) bool)
    (fun trace ->
      let p = Msg.pool () in
      let live = ref [] in
      (* reference state *)
      let r_free = ref [] and r_created = ref 0 in
      let r_acquired = ref 0 and r_released = ref 0 in
      List.iter
        (fun is_acquire ->
          if is_acquire then begin
            let m = Msg.acquire p ~arrival:0.0 ~size:8 () in
            live := m :: !live;
            (match !r_free with
            | [] -> incr r_created
            | _ :: tl -> r_free := tl);
            incr r_acquired
          end
          else
            match !live with
            | [] -> ()
            | m :: tl ->
              live := tl;
              Msg.release p m;
              r_free := 0 :: !r_free;
              incr r_released)
        trace;
      let s = Msg.pool_stats p in
      s.Msg.p_created = !r_created
      && s.Msg.p_acquired = !r_acquired
      && s.Msg.p_released = !r_released
      && s.Msg.p_outstanding = !r_acquired - !r_released
      && s.Msg.p_outstanding = List.length !live)

(* Identity safety under recycling: two live pooled messages are never
   the same record, whatever the acquire/release interleaving. *)
let prop_live_records_distinct =
  QCheck.Test.make ~name:"live pooled messages are distinct records"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 200) bool)
    (fun trace ->
      let p = Msg.pool () in
      let live = ref [] in
      List.iter
        (fun is_acquire ->
          if is_acquire then
            live := Msg.acquire p ~arrival:0.0 ~size:0 () :: !live
          else
            match !live with
            | [] -> ()
            | m :: tl ->
              live := tl;
              Msg.release p m)
        trace;
      let rec distinct = function
        | [] -> true
        | m :: tl -> (not (List.memq m tl)) && distinct tl
      in
      distinct !live)

let suite =
  [
    Alcotest.test_case "double release raises" `Quick test_double_release_raises;
    Alcotest.test_case "heap message release raises" `Quick
      test_heap_message_release_raises;
    Alcotest.test_case "recycling is LIFO over the freelist" `Quick
      test_recycle_lifo;
    Alcotest.test_case "prefilled pool ledger" `Quick test_prefilled_pool;
    QCheck_alcotest.to_alcotest prop_ledger_vs_reference;
    QCheck_alcotest.to_alcotest prop_live_records_distinct;
  ]
