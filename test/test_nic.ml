(* Tests for the simulated network adaptor: descriptor rings, drops,
   interrupt coalescing, and the driver glue into the LDLP scheduler. *)

open Ldlp_nic

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* ---------- Ring ---------- *)

let test_ring_fifo () =
  let r = Ring.create ~slots:4 in
  check "empty" true (Ring.is_empty r);
  check "push 1" true (Ring.push r 1);
  check "push 2" true (Ring.push r 2);
  Alcotest.(check (option int)) "peek" (Some 1) (Ring.peek r);
  Alcotest.(check (option int)) "pop" (Some 1) (Ring.pop r);
  Alcotest.(check (option int)) "pop" (Some 2) (Ring.pop r);
  check "drained" true (Ring.pop r = None)

let test_ring_full () =
  let r = Ring.create ~slots:2 in
  check "1" true (Ring.push r 1);
  check "2" true (Ring.push r 2);
  check "full refuses" false (Ring.push r 3);
  check "is_full" true (Ring.is_full r);
  ignore (Ring.pop r);
  check "room again" true (Ring.push r 3);
  Alcotest.(check (list int)) "order preserved" [ 2; 3 ] (Ring.pop_all r)

let test_ring_wraparound () =
  let r = Ring.create ~slots:3 in
  for round = 0 to 9 do
    check "push a" true (Ring.push r (round * 2));
    check "push b" true (Ring.push r ((round * 2) + 1));
    Alcotest.(check (option int)) "pop a" (Some (round * 2)) (Ring.pop r);
    Alcotest.(check (option int)) "pop b" (Some ((round * 2) + 1)) (Ring.pop r)
  done;
  check "empty at end" true (Ring.is_empty r)

let prop_ring_fifo =
  QCheck.Test.make ~name:"ring preserves order of accepted pushes" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let r = Ring.create ~slots:16 in
      let accepted = List.filter (fun x -> Ring.push r x) xs in
      Ring.pop_all r = accepted)

(* ---------- Nic ---------- *)

let test_nic_rx_and_drops () =
  let nic = Nic.create ~rx_slots:3 () in
  check "a" true (Nic.deliver nic "a");
  check "b" true (Nic.deliver nic "b");
  check "c" true (Nic.deliver nic "c");
  check "d dropped" false (Nic.deliver nic "d");
  let s = Nic.stats nic in
  checki "frames" 3 s.Nic.rx_frames;
  checki "drops" 1 s.Nic.rx_drops;
  Alcotest.(check (list string)) "take all" [ "a"; "b"; "c" ] (Nic.take_all nic);
  checki "ring empty" 0 (Nic.rx_available nic)

let test_nic_ring_full_metrics_agree () =
  (* A 4-slot ring refusing the 5th frame must record the drop twice over:
     in the stats record and in the metrics sheet's "rx_drops" scalar. *)
  Ldlp_obs.Obs.with_enabled true (fun () ->
      let m = Ldlp_obs.Metrics.create ~label:"nic" ~layer_names:[] in
      let nic = Nic.create ~rx_slots:4 ~metrics:m () in
      for i = 1 to 4 do
        check "accepted" true (Nic.deliver nic i)
      done;
      check "5th refused" false (Nic.deliver nic 5);
      check "6th refused" false (Nic.deliver nic 6);
      let s = Nic.stats nic in
      checki "stats: frames" 4 s.Nic.rx_frames;
      checki "stats: drops" 2 s.Nic.rx_drops;
      let scalar name = List.assoc name (Ldlp_obs.Metrics.scalars m) in
      checki "scalar mirrors rx_frames" s.Nic.rx_frames (scalar "rx_frames");
      checki "scalar mirrors rx_drops" s.Nic.rx_drops (scalar "rx_drops");
      (* Drain and refill: both views keep agreeing. *)
      ignore (Nic.take_all nic);
      ignore (Nic.deliver nic 7);
      let s = Nic.stats nic in
      checki "frames again" s.Nic.rx_frames (scalar "rx_frames");
      checki "drops unchanged" s.Nic.rx_drops (scalar "rx_drops"))

let test_nic_irq_per_frame () =
  let nic = Nic.create () in
  check "no irq initially" false (Nic.irq_pending nic);
  ignore (Nic.deliver nic ());
  check "irq raised" true (Nic.irq_pending nic);
  ignore (Nic.deliver nic ());
  let s = Nic.stats nic in
  (* Second delivery while pending does not double-count interrupts. *)
  checki "one interrupt outstanding" 1 s.Nic.interrupts;
  ignore (Nic.take_all nic);
  check "acked by service" false (Nic.irq_pending nic);
  ignore (Nic.deliver nic ());
  checki "new interrupt" 2 (Nic.stats nic).Nic.interrupts

let test_nic_irq_coalesced () =
  let nic = Nic.create ~irq:(Nic.Coalesced 4) () in
  for _ = 1 to 3 do
    ignore (Nic.deliver nic ())
  done;
  check "below threshold" false (Nic.irq_pending nic);
  ignore (Nic.deliver nic ());
  check "fires at threshold" true (Nic.irq_pending nic);
  checki "one interrupt for four frames" 1 (Nic.stats nic).Nic.interrupts

let test_nic_coalesced_full_ring_fires () =
  let nic = Nic.create ~rx_slots:2 ~irq:(Nic.Coalesced 100) () in
  ignore (Nic.deliver nic ());
  ignore (Nic.deliver nic ());
  check "full ring forces irq" true (Nic.irq_pending nic)

let test_nic_tx () =
  let nic = Nic.create ~tx_slots:2 () in
  check "tx 1" true (Nic.transmit nic "x");
  check "tx 2" true (Nic.transmit nic "y");
  check "tx full" false (Nic.transmit nic "z");
  Alcotest.(check (list string)) "wire drains" [ "x"; "y" ] (Nic.wire_take_all nic);
  let s = Nic.stats nic in
  checki "tx frames" 2 s.Nic.tx_frames;
  checki "tx drops" 1 s.Nic.tx_drops

let test_nic_service_into_sched () =
  let nic = Nic.create ~irq:(Nic.Coalesced 8) () in
  for i = 1 to 10 do
    ignore (Nic.deliver nic i)
  done;
  let delivered = ref [] in
  let sched =
    Ldlp_core.Sched.create
      ~discipline:(Ldlp_core.Sched.Ldlp Ldlp_core.Batch.paper_default)
      ~layers:[ Ldlp_core.Layer.passthrough "l1"; Ldlp_core.Layer.passthrough "l2" ]
      ~up:(fun m -> delivered := m.Ldlp_core.Msg.payload :: !delivered)
      ()
  in
  let moved =
    Nic.service_into nic sched ~wrap:(fun i -> Ldlp_core.Msg.make ~size:64 i)
  in
  checki "all frames moved" 10 moved;
  Ldlp_core.Sched.run sched;
  Alcotest.(check (list int))
    "delivered in order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !delivered);
  (* The batch the scheduler saw came from the ring occupancy. *)
  let st = Ldlp_core.Sched.stats sched in
  check "batched" true (st.Ldlp_core.Sched.max_batch >= 8)

let suite =
  [
    Alcotest.test_case "ring fifo" `Quick test_ring_fifo;
    Alcotest.test_case "ring full" `Quick test_ring_full;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    QCheck_alcotest.to_alcotest prop_ring_fifo;
    Alcotest.test_case "nic rx/drops" `Quick test_nic_rx_and_drops;
    Alcotest.test_case "nic ring full: stats and metrics agree" `Quick
      test_nic_ring_full_metrics_agree;
    Alcotest.test_case "nic irq per-frame" `Quick test_nic_irq_per_frame;
    Alcotest.test_case "nic irq coalesced" `Quick test_nic_irq_coalesced;
    Alcotest.test_case "nic coalesced full ring" `Quick test_nic_coalesced_full_ring_fires;
    Alcotest.test_case "nic tx" `Quick test_nic_tx;
    Alcotest.test_case "nic service into sched" `Quick test_nic_service_into_sched;
  ]
