(* Tests for the observability subsystem (lib/obs): histogram contracts
   pinned against a naive sorted-array reference, the merge algebra that
   lets per-domain sheets combine, span and metric-sheet recording, the
   instrumented schedulers, and — the load-bearing guarantee — that the
   disabled gate costs zero allocation on the hot path. *)

module Obs = Ldlp_obs.Obs
module Histogram = Ldlp_obs.Histogram
module Span = Ldlp_obs.Span
module Metrics = Ldlp_obs.Metrics

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf = Alcotest.(check (float 1e-9))

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let of_list xs =
  let h = Histogram.create () in
  List.iter (Histogram.add h) xs;
  h

(* ---------- Histogram: bucket geometry ---------- *)

let test_hist_buckets () =
  checki "0 -> bucket 0" 0 (Histogram.bucket_of 0);
  checki "1 -> bucket 1" 1 (Histogram.bucket_of 1);
  checki "2 -> bucket 2" 2 (Histogram.bucket_of 2);
  checki "3 -> bucket 2" 2 (Histogram.bucket_of 3);
  checki "4 -> bucket 3" 3 (Histogram.bucket_of 4);
  checki "max_int lands in the last bucket" 62 (Histogram.bucket_of max_int);
  (* lo/hi really bracket their bucket, and round-trip through bucket_of. *)
  for b = 0 to 61 do
    let lo = Histogram.bucket_lo b and hi = Histogram.bucket_hi b in
    check "lo <= hi" true (lo <= hi);
    checki "bucket_of lo" b (Histogram.bucket_of lo);
    checki "bucket_of hi" b (Histogram.bucket_of hi)
  done;
  check "negative add rejected" true
    (try
       Histogram.add (Histogram.create ()) (-1);
       false
     with Invalid_argument _ -> true)

let test_hist_empty () =
  let h = Histogram.create () in
  checki "count" 0 (Histogram.count h);
  checki "sum" 0 (Histogram.sum h);
  checkf "mean" 0.0 (Histogram.mean h);
  checki "quantile" 0 (Histogram.quantile h 0.99);
  check "summary" true (contains (Histogram.summary h) "n=0");
  check "buckets" true (Histogram.buckets h = [])

(* The reference implementation the properties compare against: keep every
   value, sort, index.  [quantile] is bucket-resolution by contract — the
   upper bound of the bucket holding the rank-th smallest value, clamped
   to the true maximum. *)
let ref_quantile xs p =
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  if n = 0 then 0
  else
    let rank = max 1 (min n (int_of_float (ceil (p *. float_of_int n)))) in
    let exact = List.nth sorted (rank - 1) in
    min (Histogram.bucket_hi (Histogram.bucket_of exact)) (List.nth sorted (n - 1))

let value_list = QCheck.(list (int_bound 100_000))

let prop_hist_matches_reference =
  QCheck.Test.make ~name:"histogram matches sorted-array reference" ~count:300
    value_list
    (fun xs ->
      let h = of_list xs in
      let n = List.length xs in
      Histogram.count h = n
      && Histogram.sum h = List.fold_left ( + ) 0 xs
      && (n = 0 || Histogram.min_value h = List.fold_left min max_int xs)
      && (n = 0 || Histogram.max_value h = List.fold_left max 0 xs)
      && (n = 0
         || Float.abs
              (Histogram.mean h
              -. float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int n)
            < 1e-9)
      && List.for_all
           (fun p -> Histogram.quantile h p = ref_quantile xs p)
           [ 0.0; 0.5; 0.9; 0.99; 1.0 ]
      && Histogram.median h = ref_quantile xs 0.5)

let prop_hist_quantile_bounds =
  QCheck.Test.make ~name:"quantile never under-reports, never exceeds max"
    ~count:300
    QCheck.(pair value_list (float_range 0.0 1.0))
    (fun (xs, p) ->
      match xs with
      | [] -> Histogram.quantile (of_list xs) p = 0
      | _ ->
        let q = Histogram.quantile (of_list xs) p in
        let sorted = List.sort compare xs in
        let n = List.length sorted in
        let rank = max 1 (min n (int_of_float (ceil (p *. float_of_int n)))) in
        q >= List.nth sorted (rank - 1) && q <= List.nth sorted (n - 1))

let prop_hist_merge =
  QCheck.Test.make
    ~name:"merge a b == recording both streams into one histogram" ~count:300
    QCheck.(pair value_list value_list)
    (fun (xs, ys) ->
      let merged = Histogram.merge (of_list xs) (of_list ys) in
      let direct = of_list (xs @ ys) in
      Histogram.equal merged direct
      &&
      (let dst = of_list xs in
       Histogram.merge_into ~dst (of_list ys);
       Histogram.equal dst direct))

let test_hist_buckets_listing () =
  let h = of_list [ 0; 0; 1; 5; 5; 6; 1000 ] in
  (* 0 twice; 1 once; [4,7] three times; 1000 in [512,1023]. *)
  check "buckets ascending with counts" true
    (Histogram.buckets h = [ (0, 0, 2); (1, 1, 1); (4, 7, 3); (512, 1023, 1) ])

(* ---------- Span ---------- *)

let test_span_gate_off () =
  Obs.with_enabled false (fun () ->
      let s = Span.create "idle" in
      checki "result passes through" 42 (Span.time s (fun () -> 42));
      checki "no call recorded" 0 (Span.calls s);
      checki "no time recorded" 0 (Span.total_ns s))

let test_span_gate_on () =
  Obs.with_enabled true (fun () ->
      let s = Span.create "busy" in
      checki "result" 7 (Span.time s (fun () -> 7));
      ignore (Span.time s (fun () -> Sys.opaque_identity (String.make 64 'x')));
      checki "two calls" 2 (Span.calls s);
      check "allocation attributed" true (Span.minor_words s > 0);
      (* Exceptions still record the call. *)
      (try Span.time s (fun () -> failwith "boom") with Failure _ -> ());
      checki "exceptional call recorded" 3 (Span.calls s);
      let d = Span.create "busy" in
      ignore (Span.time d (fun () -> ()));
      Span.merge_into ~dst:d s;
      checki "merge sums calls" 4 (Span.calls d);
      check "summary names the span" true (contains (Span.summary d) "busy"))

(* ---------- Metrics sheet ---------- *)

let sheet () = Metrics.create ~label:"t" ~layer_names:[ "a"; "b"; "c" ]

let test_metrics_gate_off () =
  Obs.with_enabled false (fun () ->
      let m = sheet () in
      Metrics.arrival m ~depth:5;
      Metrics.batch_run m 4;
      Metrics.handled m 0;
      Metrics.queue_depth m 1 9;
      Metrics.charge m 2 ~exec:10 ~stall:20 ~imisses:1 ~dmisses:2 ~wmisses:3;
      Metrics.alloc m 0 100;
      Metrics.latency_s m 0.5;
      let r = Metrics.scalar m "s" in
      Metrics.add_scalar r 3;
      checki "no messages" 0 (Metrics.messages m);
      checki "no batches" 0 (Metrics.batches m);
      checki "scalar untouched" 0 !r;
      let t = Metrics.totals m in
      checki "no handled" 0 t.Metrics.t_handled;
      checki "no cycles" 0 (t.Metrics.t_exec_cycles + t.Metrics.t_stall_cycles);
      checki "no misses" 0
        (t.Metrics.t_imisses + t.Metrics.t_dmisses + t.Metrics.t_wmisses))

let test_metrics_recorders () =
  Obs.with_enabled true (fun () ->
      let m = sheet () in
      Metrics.arrival m ~depth:3;
      Metrics.arrival m ~depth:7;
      Metrics.batch_run m 2;
      (* a, a, b, a: two quanta for a (entry + re-entry), one for b. *)
      Metrics.handled m 0;
      Metrics.handled m 0;
      Metrics.handled m 1;
      Metrics.handled m 0;
      Metrics.queue_depth m 1 4;
      Metrics.queue_depth m 1 2;
      Metrics.charge m 1 ~exec:100 ~stall:50 ~imisses:5 ~dmisses:3 ~wmisses:1;
      Metrics.charge m 1 ~exec:10 ~stall:5 ~imisses:1 ~dmisses:1 ~wmisses:0;
      Metrics.alloc m 2 64;
      Metrics.latency_s m 1e-6;
      checki "messages" 2 (Metrics.messages m);
      checki "batches" 1 (Metrics.batches m);
      let a = Metrics.layer m 0 and b = Metrics.layer m 1 in
      checki "a handled" 3 a.Metrics.handled;
      checki "a quanta" 2 a.Metrics.quanta;
      checki "b handled" 1 b.Metrics.handled;
      checki "b quanta" 1 b.Metrics.quanta;
      checki "b exec" 110 b.Metrics.exec_cycles;
      checki "b stall" 55 b.Metrics.stall_cycles;
      checki "b imisses" 6 b.Metrics.imisses;
      checki "b dmisses" 4 b.Metrics.dmisses;
      checki "b wmisses" 1 b.Metrics.wmisses;
      checki "b queue peak is a max" 4 b.Metrics.queue_peak;
      checki "c minor words" 64 (Metrics.layer m 2).Metrics.minor_words;
      checki "latency in ns" 1000 (Histogram.max_value (Metrics.latency_hist m));
      checki "depth hist peak" 7 (Histogram.max_value (Metrics.depth_hist m));
      let t = Metrics.totals m in
      checki "total handled" 4 t.Metrics.t_handled;
      checki "total imisses" 6 t.Metrics.t_imisses;
      (* Scalars are find-or-create: same name, same ref. *)
      let r1 = Metrics.scalar m "drops" in
      let r2 = Metrics.scalar m "drops" in
      check "same ref" true (r1 == r2);
      Metrics.add_scalar r1 2;
      check "registered" true (Metrics.scalars m = [ ("drops", 2) ]))

let filled label =
  let m = Metrics.create ~label ~layer_names:[ "a"; "b" ] in
  Metrics.arrival m ~depth:1;
  Metrics.handled m 0;
  Metrics.handled m 1;
  Metrics.charge m 0 ~exec:10 ~stall:4 ~imisses:2 ~dmisses:1 ~wmisses:0;
  Metrics.batch_run m 1;
  Metrics.latency_s m 1e-3;
  Metrics.add_scalar (Metrics.scalar m "offered") 1;
  m

let test_metrics_merge () =
  Obs.with_enabled true (fun () ->
      let x = filled "x" and y = filled "y" in
      Metrics.queue_depth x 1 9;
      Metrics.queue_depth y 1 3;
      let z = Metrics.merge ~label:"z" x y in
      checki "messages sum" 2 (Metrics.messages z);
      checki "batches sum" 2 (Metrics.batches z);
      let t = Metrics.totals z in
      checki "handled sum" 4 t.Metrics.t_handled;
      checki "imisses sum" 4 t.Metrics.t_imisses;
      checki "queue peak is max not sum" 9 (Metrics.layer z 1).Metrics.queue_peak;
      check "scalars sum" true (Metrics.scalars z = [ ("offered", 2) ]);
      check "latency hists merge" true
        (Histogram.count (Metrics.latency_hist z) = 2);
      (* Shape mismatch must be loud, not silent corruption. *)
      let bad = Metrics.create ~label:"bad" ~layer_names:[ "a"; "zzz" ] in
      check "shape mismatch rejected" true
        (try
           Metrics.merge_into ~dst:bad x;
           false
         with Invalid_argument _ -> true))

let test_metrics_merge_is_order_independent () =
  Obs.with_enabled true (fun () ->
      let x = filled "x" and y = filled "y" in
      Metrics.charge y 1 ~exec:7 ~stall:1 ~imisses:3 ~dmisses:2 ~wmisses:1;
      let xy = Metrics.merge ~label:"m" x y
      and yx = Metrics.merge ~label:"m" y x in
      check "render equal both orders" true
        (Metrics.render xy = Metrics.render yx))

let test_metrics_render () =
  Obs.with_enabled true (fun () ->
      let m = filled "render me" in
      let s = Metrics.render m in
      check "label" true (contains s "render me");
      check "layer row" true (contains s "a");
      check "per-message rates" true (contains s "per-message");
      check "scalar" true (contains s "offered");
      check "host data excluded by default" true (not (contains s "-- host"));
      Metrics.alloc m 0 32;
      let h = Metrics.render ~host:true m in
      check "host section on demand" true (contains h "-- host");
      check "allocation attribution" true (contains h "minor-words=32"))

(* ---------- Instrumented scheduler ---------- *)

let passthrough_layers n =
  List.init n (fun i -> Ldlp_core.Layer.passthrough (Printf.sprintf "P%d" i))

let test_sched_records () =
  Obs.with_enabled true (fun () ->
      let m =
        Metrics.create ~label:"sched" ~layer_names:[ "P0"; "P1"; "P2" ]
      in
      let sched =
        Ldlp_core.Sched.create
          ~discipline:(Ldlp_core.Sched.Ldlp Ldlp_core.Batch.paper_default)
          ~layers:(passthrough_layers 3) ~metrics:m ()
      in
      for _ = 1 to 10 do
        Ldlp_core.Sched.inject sched (Ldlp_core.Msg.make ~size:552 ())
      done;
      Ldlp_core.Sched.run sched;
      checki "arrivals recorded" 10 (Metrics.messages m);
      let t = Metrics.totals m in
      checki "every layer handled every message" 30 t.Metrics.t_handled;
      check "batched under LDLP" true (Metrics.batches m < 10);
      checki "queue peak at entry" 10 (Metrics.layer m 0).Metrics.queue_peak)

let test_sched_rejects_bad_sheet () =
  let m = Metrics.create ~label:"short" ~layer_names:[ "only" ] in
  check "layer-count mismatch rejected" true
    (try
       ignore
         (Ldlp_core.Sched.create ~discipline:Ldlp_core.Sched.Conventional
            ~layers:(passthrough_layers 3) ~metrics:m ());
       false
     with Invalid_argument _ -> true)

(* ---------- The zero-cost-when-off guarantee ---------- *)

(* Direct recorder loop: with the gate off, 100k recorder calls must not
   allocate.  The tolerance covers only the boxed floats the two
   [Gc.minor_words] reads themselves produce. *)
let test_zero_alloc_recorders () =
  Obs.with_enabled false (fun () ->
      let m = sheet () in
      let r = Metrics.scalar m "s" in
      let s = Span.create "s" in
      let w0 = Gc.minor_words () in
      for i = 1 to 100_000 do
        Metrics.arrival m ~depth:i;
        Metrics.batch_run m 4;
        Metrics.handled m 0;
        Metrics.queue_depth m 1 i;
        Metrics.charge m 2 ~exec:1 ~stall:2 ~imisses:3 ~dmisses:4 ~wmisses:5;
        Metrics.add_scalar r 1;
        Span.time s ignore
      done;
      let dw = Gc.minor_words () -. w0 in
      if dw > 16.0 then
        Alcotest.failf "disabled recorders allocated %.0f minor words" dw;
      checki "and recorded nothing" 0 (Metrics.totals m).Metrics.t_handled)

(* End-to-end: a ~10k-message Runtime run with a (gate-off) sheet attached
   must allocate no more minor words than the identical run with no sheet
   at all — instrumentation that is "off" is provably free.  Fresh pool
   per run so the allocator work is identical; one warmup run per variant
   absorbs one-time setup (scalar registration on the sheet). *)
let runtime_run metrics =
  let pool = Ldlp_buf.Pool.create () in
  let rng = Ldlp_sim.Rng.create ~seed:7 in
  let workload =
    Ldlp_core.Runtime.poisson_workload ~rng ~rate:10_000.0 ~duration:1.0
      ~size:552
  in
  Ldlp_core.Runtime.run
    ~discipline:(Ldlp_core.Sched.Ldlp Ldlp_core.Batch.paper_default)
    ~layers:(passthrough_layers 3)
    ~make_payload:(fun ~size -> Ldlp_buf.Mbuf.of_bytes pool (Bytes.create size))
    ?metrics workload

let test_zero_alloc_runtime () =
  Obs.with_enabled false (fun () ->
      let m = Metrics.create ~label:"off" ~layer_names:[ "P0"; "P1"; "P2" ] in
      ignore (runtime_run None);
      ignore (runtime_run (Some m));
      let w0 = Gc.minor_words () in
      let r_none = runtime_run None in
      let w1 = Gc.minor_words () in
      let r_some = runtime_run (Some m) in
      let w2 = Gc.minor_words () in
      let d_none = w1 -. w0 and d_some = w2 -. w1 in
      check "runs saw real traffic" true
        (r_none.Ldlp_core.Runtime.processed > 9_000);
      checki "identical behaviour" r_none.Ldlp_core.Runtime.processed
        r_some.Ldlp_core.Runtime.processed;
      if d_some > d_none then
        Alcotest.failf
          "metrics-off run allocated %.0f extra minor words over %d messages"
          (d_some -. d_none) r_some.Ldlp_core.Runtime.processed;
      checki "sheet stayed empty" 0 (Metrics.messages m))

(* And the same sheet actually fills up when the gate is on — the off-run
   above is silent because of the gate, not because the wiring is dead. *)
let test_runtime_records_when_on () =
  Obs.with_enabled true (fun () ->
      let m = Metrics.create ~label:"on" ~layer_names:[ "P0"; "P1"; "P2" ] in
      let r = runtime_run (Some m) in
      checki "arrivals = offered - dropped"
        (r.Ldlp_core.Runtime.offered - r.Ldlp_core.Runtime.dropped)
        (Metrics.messages m);
      check "latency samples" true
        (Histogram.count (Metrics.latency_hist m) > 0);
      check "offered scalar" true
        (List.mem_assoc "offered" (Metrics.scalars m)))

let suite =
  [
    Alcotest.test_case "histogram bucket geometry" `Quick test_hist_buckets;
    Alcotest.test_case "histogram empty" `Quick test_hist_empty;
    Alcotest.test_case "histogram bucket listing" `Quick
      test_hist_buckets_listing;
    QCheck_alcotest.to_alcotest prop_hist_matches_reference;
    QCheck_alcotest.to_alcotest prop_hist_quantile_bounds;
    QCheck_alcotest.to_alcotest prop_hist_merge;
    Alcotest.test_case "span gate off" `Quick test_span_gate_off;
    Alcotest.test_case "span gate on" `Quick test_span_gate_on;
    Alcotest.test_case "metrics gate off" `Quick test_metrics_gate_off;
    Alcotest.test_case "metrics recorders" `Quick test_metrics_recorders;
    Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
    Alcotest.test_case "metrics merge order-independent" `Quick
      test_metrics_merge_is_order_independent;
    Alcotest.test_case "metrics render" `Quick test_metrics_render;
    Alcotest.test_case "sched records into sheet" `Quick test_sched_records;
    Alcotest.test_case "sched rejects wrong-shape sheet" `Quick
      test_sched_rejects_bad_sheet;
    Alcotest.test_case "zero allocation: raw recorders off" `Quick
      test_zero_alloc_recorders;
    Alcotest.test_case "zero allocation: runtime with sheet off" `Quick
      test_zero_alloc_runtime;
    Alcotest.test_case "runtime records when on" `Quick
      test_runtime_records_when_on;
  ]
