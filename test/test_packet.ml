(* Tests for the packet codecs and the two checksum implementations. *)

open Ldlp_packet

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checks = Alcotest.(check string)

let pool = Ldlp_buf.Pool.create ()

(* ---------- checksum ---------- *)

let test_cksum_rfc1071_example () =
  (* RFC 1071's worked example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2,
     checksum is its complement 220d. *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  checki "simple" 0x220D (Cksum.simple b 0 8);
  checki "unrolled" 0x220D (Cksum.unrolled b 0 8)

let test_cksum_empty_and_odd () =
  let b = Bytes.of_string "\xff" in
  checki "empty" 0xFFFF (Cksum.simple b 0 0);
  checki "single odd byte" (lnot 0xFF00 land 0xFFFF) (Cksum.simple b 0 1)

let test_cksum_verifies_to_zero () =
  (* Appending the checksum makes the whole range sum to zero. *)
  let b = Bytes.of_string "\x45\x00\x00\x54\x00\x00\x40\x00\x40\x01" in
  let c = Cksum.simple b 0 10 in
  let full = Bytes.cat b (Bytes.of_string (Printf.sprintf "%c%c" (Char.chr (c lsr 8)) (Char.chr (c land 0xFF)))) in
  checki "self-verifies" 0 (Cksum.simple full 0 12)

let bytes_arb =
  QCheck.make
    ~print:(fun b -> String.escaped (Bytes.to_string b))
    QCheck.Gen.(map Bytes.of_string (string_size (0 -- 1500)))

let prop_simple_eq_unrolled =
  QCheck.Test.make ~name:"simple = unrolled on arbitrary input" ~count:500
    bytes_arb (fun b ->
      Cksum.simple b 0 (Bytes.length b) = Cksum.unrolled b 0 (Bytes.length b))

let prop_chain_eq_flat =
  QCheck.Test.make ~name:"chain checksum = flat checksum" ~count:300 bytes_arb
    (fun b ->
      let m = Ldlp_buf.Mbuf.of_bytes pool b in
      let flat = Cksum.simple b 0 (Bytes.length b) in
      let r = Cksum.simple_chain m = flat && Cksum.unrolled_chain m = flat in
      Ldlp_buf.Mbuf.free pool m;
      r)

let prop_chain_eq_flat_with_splits =
  QCheck.Test.make ~name:"chain checksum invariant under split points"
    ~count:300
    QCheck.(pair bytes_arb (int_bound 1400))
    (fun (b, n) ->
      let n = min n (Bytes.length b) in
      let m = Ldlp_buf.Mbuf.of_bytes pool b in
      let front, back = Ldlp_buf.Mbuf.split pool m n in
      let joined = Ldlp_buf.Mbuf.concat front back in
      let r = Cksum.simple_chain joined = Cksum.simple b 0 (Bytes.length b) in
      Ldlp_buf.Mbuf.free pool joined;
      r)

let test_cksum_footprints () =
  checki "paper simple footprint" 288 Cksum.code_bytes_simple;
  checki "paper elaborate footprint" 992 Cksum.code_bytes_unrolled

(* ---------- addresses ---------- *)

let test_mac_roundtrip () =
  let m = Addr.Mac.of_string "de:ad:be:ef:00:01" in
  checks "to_string" "de:ad:be:ef:00:01" (Addr.Mac.to_string m);
  let b = Bytes.create 6 in
  Addr.Mac.write m b 0;
  check "bytes roundtrip" true (Addr.Mac.equal m (Addr.Mac.of_bytes b 0));
  check "broadcast" true (Addr.Mac.is_broadcast Addr.Mac.broadcast);
  check "not broadcast" false (Addr.Mac.is_broadcast m)

let test_ipv4_roundtrip () =
  let a = Addr.Ipv4.of_string "192.168.1.42" in
  checks "to_string" "192.168.1.42" (Addr.Ipv4.to_string a);
  let b = Bytes.create 4 in
  Addr.Ipv4.write a b 0;
  check "bytes roundtrip" true (Addr.Ipv4.equal a (Addr.Ipv4.of_bytes b 0))

let test_bad_addresses () =
  check "bad mac" true
    (try ignore (Addr.Mac.of_string "nope"); false
     with Invalid_argument _ -> true);
  check "bad ip" true
    (try ignore (Addr.Ipv4.of_string "300.1.1.1"); false
     with Invalid_argument _ -> true)

(* ---------- ethernet ---------- *)

let eth_header () =
  {
    Ethernet.dst = Addr.Mac.of_string "aa:bb:cc:dd:ee:ff";
    src = Addr.Mac.of_string "11:22:33:44:55:66";
    ethertype = Ethernet.ethertype_ipv4;
  }

let test_ethernet_roundtrip () =
  let h = eth_header () in
  let b = Bytes.create 64 in
  Ethernet.build h b 0;
  match Ethernet.parse b 0 64 with
  | Error _ -> Alcotest.fail "parse failed"
  | Ok (h', payload) ->
    checki "payload offset" 14 payload;
    check "dst" true (Addr.Mac.equal h.Ethernet.dst h'.Ethernet.dst);
    check "src" true (Addr.Mac.equal h.Ethernet.src h'.Ethernet.src);
    checki "ethertype" h.Ethernet.ethertype h'.Ethernet.ethertype

let test_ethernet_too_short () =
  match Ethernet.parse (Bytes.create 10) 0 10 with
  | Error (`Too_short 10) -> ()
  | _ -> Alcotest.fail "expected Too_short"

let test_ethernet_strip_encapsulate () =
  let h = eth_header () in
  let m = Ldlp_buf.Mbuf.of_string pool "datagram-bytes" in
  let m = Ethernet.encapsulate m h in
  checki "framed length" (14 + 14) (Ldlp_buf.Mbuf.length m);
  (match Ethernet.strip m with
  | Error _ -> Alcotest.fail "strip failed"
  | Ok h' -> checki "type preserved" h.Ethernet.ethertype h'.Ethernet.ethertype);
  checks "payload restored" "datagram-bytes"
    (Bytes.to_string (Ldlp_buf.Mbuf.to_bytes m));
  Ldlp_buf.Mbuf.free pool m

(* ---------- ipv4 ---------- *)

let ip_header ~len =
  {
    Ipv4.ihl = 5;
    tos = 0;
    total_length = len;
    ident = 0x1234;
    dont_fragment = true;
    more_fragments = false;
    fragment_offset = 0;
    ttl = 64;
    protocol = Ipv4.proto_tcp;
    src = Addr.Ipv4.of_string "10.0.0.1";
    dst = Addr.Ipv4.of_string "10.0.0.2";
  }

let test_ipv4_roundtrip_hdr () =
  let h = ip_header ~len:40 in
  let b = Bytes.create 40 in
  Ipv4.build h b 0;
  match Ipv4.parse b 0 40 with
  | Error _ -> Alcotest.fail "parse failed"
  | Ok (h', off) ->
    checki "payload offset" 20 off;
    checki "total length" 40 h'.Ipv4.total_length;
    checki "ident" 0x1234 h'.Ipv4.ident;
    check "df" true h'.Ipv4.dont_fragment;
    checki "ttl" 64 h'.Ipv4.ttl;
    check "src" true (Addr.Ipv4.equal h.Ipv4.src h'.Ipv4.src);
    check "not fragment" false (Ipv4.is_fragment h')

let test_ipv4_bad_checksum () =
  let h = ip_header ~len:40 in
  let b = Bytes.create 40 in
  Ipv4.build h b 0;
  Bytes.set b 8 '\x01' (* corrupt ttl *);
  match Ipv4.parse b 0 40 with
  | Error `Bad_checksum -> ()
  | _ -> Alcotest.fail "expected Bad_checksum"

let test_ipv4_bad_version () =
  let b = Bytes.make 20 '\x00' in
  Bytes.set b 0 '\x65';
  match Ipv4.parse b 0 20 with
  | Error (`Bad_version 6) -> ()
  | _ -> Alcotest.fail "expected Bad_version 6"

let test_ipv4_strip_encapsulate () =
  let m = Ldlp_buf.Mbuf.of_string pool "tcp-segment-here" in
  let m = Ipv4.encapsulate m (ip_header ~len:0) in
  checki "framed" 36 (Ldlp_buf.Mbuf.length m);
  (match Ipv4.strip m with
  | Error _ -> Alcotest.fail "strip failed"
  | Ok h' -> checki "total length" 36 h'.Ipv4.total_length);
  checks "payload" "tcp-segment-here"
    (Bytes.to_string (Ldlp_buf.Mbuf.to_bytes m));
  Ldlp_buf.Mbuf.free pool m

let test_ipv4_strip_drops_padding () =
  let m = Ldlp_buf.Mbuf.of_string pool "payload!" in
  let m = Ipv4.encapsulate m (ip_header ~len:0) in
  (* Link-layer padding past total_length must be trimmed on strip. *)
  Ldlp_buf.Mbuf.append_bytes pool m (Bytes.make 18 '\x00');
  (match Ipv4.strip m with
  | Error _ -> Alcotest.fail "strip failed"
  | Ok _ -> ());
  checks "padding gone" "payload!" (Bytes.to_string (Ldlp_buf.Mbuf.to_bytes m));
  Ldlp_buf.Mbuf.free pool m

(* ---------- tcp ---------- *)

let tcp_header =
  {
    Tcp.src_port = 1234;
    dst_port = 80;
    seq = 0x01020304l;
    ack = 0x0A0B0C0Dl;
    data_offset = 5;
    flags = Tcp.flag_ack lor Tcp.flag_psh;
    window = 8760;
    urgent = 0;
  }

let test_tcp_roundtrip () =
  let b = Bytes.create 20 in
  Tcp.build tcp_header b 0;
  match Tcp.parse b 0 20 with
  | Error _ -> Alcotest.fail "parse failed"
  | Ok (h', off) ->
    checki "offset" 20 off;
    checki "sport" 1234 h'.Tcp.src_port;
    checki "dport" 80 h'.Tcp.dst_port;
    check "seq" true (Int32.equal tcp_header.Tcp.seq h'.Tcp.seq);
    check "ack flag" true (Tcp.has_flag h' Tcp.flag_ack);
    check "psh flag" true (Tcp.has_flag h' Tcp.flag_psh);
    check "syn unset" false (Tcp.has_flag h' Tcp.flag_syn);
    checki "window" 8760 h'.Tcp.window

let test_tcp_checksum_roundtrip () =
  let src = Addr.Ipv4.of_string "10.0.0.1"
  and dst = Addr.Ipv4.of_string "10.0.0.2" in
  let payload = "GET / HTTP/1.0\r\n\r\n" in
  let seg = Bytes.create (20 + String.length payload) in
  Tcp.build tcp_header seg 0;
  Bytes.blit_string payload 0 seg 20 (String.length payload);
  Tcp.store_checksum ~src ~dst seg 0 (Bytes.length seg);
  let m = Ldlp_buf.Mbuf.of_bytes pool seg in
  check "verifies" true (Tcp.verify_checksum ~src ~dst m);
  (* Corrupt one payload byte: must fail. *)
  Ldlp_buf.Mbuf.copy_into m ~pos:25 (Bytes.of_string "X") ~src_off:0 ~len:1;
  check "corruption detected" false (Tcp.verify_checksum ~src ~dst m);
  Ldlp_buf.Mbuf.free pool m

let test_tcp_seq_arithmetic () =
  check "lt" true (Tcp.seq_lt 1l 2l);
  check "wraparound lt" true (Tcp.seq_lt 0xFFFFFFFFl 5l);
  check "wraparound not lt" false (Tcp.seq_lt 5l 0xFFFFFFFFl);
  check "leq self" true (Tcp.seq_leq 7l 7l);
  check "add wraps" true (Int32.equal (Tcp.seq_add 0xFFFFFFFFl 2) 1l);
  checki "diff" 10 (Tcp.seq_diff 15l 5l);
  checki "diff wrap" 6 (Tcp.seq_diff 5l 0xFFFFFFFFl)

let prop_tcp_seq_total_order_window =
  QCheck.Test.make ~name:"seq comparison antisymmetric for close values"
    ~count:300
    QCheck.(pair (int_bound 1000000) (int_bound 1000000))
    (fun (a, b) ->
      let a = Int32.of_int a and b = Int32.of_int b in
      if Int32.equal a b then Tcp.seq_leq a b && Tcp.seq_leq b a
      else Tcp.seq_lt a b <> Tcp.seq_lt b a)

(* ---------- udp ---------- *)

let test_udp_roundtrip () =
  let src = Addr.Ipv4.of_string "10.0.0.1"
  and dst = Addr.Ipv4.of_string "10.0.0.2" in
  let payload = "dns-query" in
  let dgram = Bytes.create (8 + String.length payload) in
  Bytes.blit_string payload 0 dgram 8 (String.length payload);
  Udp.build
    { Udp.src_port = 53; dst_port = 5353; length = 0 }
    ~src ~dst dgram 0 ~payload_len:(String.length payload);
  (match Udp.parse dgram 0 (Bytes.length dgram) with
  | Error _ -> Alcotest.fail "parse failed"
  | Ok (h, off) ->
    checki "sport" 53 h.Udp.src_port;
    checki "length" 17 h.Udp.length;
    checki "payload offset" 8 off);
  check "checksum verifies" true
    (Udp.verify_checksum ~src ~dst dgram 0 (Bytes.length dgram))

let test_udp_too_short () =
  match Udp.parse (Bytes.create 4) 0 4 with
  | Error (`Too_short _) -> ()
  | _ -> Alcotest.fail "expected Too_short"

(* ---------- fragmentation / reassembly ---------- *)

let frag_header =
  {
    Ipv4.ihl = 5;
    tos = 0;
    total_length = 0;
    ident = 0x4242;
    dont_fragment = false;
    more_fragments = false;
    fragment_offset = 0;
    ttl = 64;
    protocol = Ipv4.proto_udp;
    src = Addr.Ipv4.of_string "10.0.0.1";
    dst = Addr.Ipv4.of_string "10.0.0.2";
  }

let test_fragment_small_passthrough () =
  let payload = Bytes.of_string "tiny" in
  match Reasm.fragment ~mtu:576 ~header:frag_header ~payload with
  | [ (h, p) ] ->
    check "no MF" false h.Ipv4.more_fragments;
    checki "offset 0" 0 h.Ipv4.fragment_offset;
    check "payload intact" true (Bytes.equal p payload)
  | l -> Alcotest.failf "expected 1 fragment, got %d" (List.length l)

let test_fragment_structure () =
  let payload = Bytes.init 3000 (fun i -> Char.chr (i land 0xFF)) in
  let frags = Reasm.fragment ~mtu:576 ~header:frag_header ~payload in
  check "multiple fragments" true (List.length frags > 1);
  (* All but the last carry MF and 8-aligned lengths; offsets chain. *)
  let rec walk expect_off = function
    | [] -> ()
    | [ (h, p) ] ->
      check "last has no MF" false h.Ipv4.more_fragments;
      checki "last offset" expect_off (h.Ipv4.fragment_offset * 8);
      checki "total covered" 3000 ((h.Ipv4.fragment_offset * 8) + Bytes.length p)
    | (h, p) :: rest ->
      check "MF set" true h.Ipv4.more_fragments;
      checki "aligned" 0 (Bytes.length p mod 8);
      checki "offset chain" expect_off (h.Ipv4.fragment_offset * 8);
      walk (expect_off + Bytes.length p) rest
  in
  walk 0 frags

let test_fragment_df_raises () =
  check "DF blocks fragmentation" true
    (try
       ignore
         (Reasm.fragment ~mtu:100
            ~header:{ frag_header with Ipv4.dont_fragment = true }
            ~payload:(Bytes.create 500));
       false
     with Invalid_argument _ -> true)

let test_reassembly_in_order_and_reversed () =
  let payload = Bytes.init 2500 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  let frags = Reasm.fragment ~mtu:576 ~header:frag_header ~payload in
  let run frags =
    let r = Reasm.create () in
    List.fold_left
      (fun acc (h, p) ->
        match Reasm.input r ~now:0.0 h p with
        | Reasm.Complete (h, out) -> Some (h, out)
        | Reasm.Pending -> acc
        | Reasm.Rejected why -> Alcotest.failf "rejected: %s" why)
      None frags
  in
  (match run frags with
  | Some (h, out) ->
    check "payload restored" true (Bytes.equal out payload);
    checki "length restored" (2500 + 20) h.Ipv4.total_length;
    check "not a fragment" false (Ipv4.is_fragment h)
  | None -> Alcotest.fail "in-order reassembly incomplete");
  match run (List.rev frags) with
  | Some (_, out) -> check "reversed order ok" true (Bytes.equal out payload)
  | None -> Alcotest.fail "reversed reassembly incomplete"

let test_reassembly_overlap_rejected () =
  let r = Reasm.create () in
  let h ~off ~mf =
    { frag_header with Ipv4.fragment_offset = off / 8; more_fragments = mf }
  in
  (match Reasm.input r ~now:0.0 (h ~off:0 ~mf:true) (Bytes.create 16) with
  | Reasm.Pending -> ()
  | _ -> Alcotest.fail "first fragment should pend");
  match Reasm.input r ~now:0.0 (h ~off:8 ~mf:true) (Bytes.create 16) with
  | Reasm.Rejected _ -> checki "reassembly dropped" 0 (Reasm.pending r)
  | _ -> Alcotest.fail "overlap must be rejected"

let test_reassembly_timeout () =
  let r = Reasm.create ~timeout:1.0 () in
  let h = { frag_header with Ipv4.more_fragments = true } in
  ignore (Reasm.input r ~now:0.0 h (Bytes.create 16));
  checki "one pending" 1 (Reasm.pending r);
  checki "expired" 1 (Reasm.expire r ~now:5.0);
  checki "gone" 0 (Reasm.pending r)

let test_reassembly_interleaved_datagrams () =
  let p1 = Bytes.make 1200 'a' and p2 = Bytes.make 1200 'b' in
  let f1 = Reasm.fragment ~mtu:576 ~header:frag_header ~payload:p1 in
  let f2 =
    Reasm.fragment ~mtu:576
      ~header:{ frag_header with Ipv4.ident = 0x4243 }
      ~payload:p2
  in
  let r = Reasm.create () in
  let done1 = ref None and done2 = ref None in
  let feed (h, p) =
    match Reasm.input r ~now:0.0 h p with
    | Reasm.Complete (_, out) ->
      if h.Ipv4.ident = 0x4242 then done1 := Some out else done2 := Some out
    | Reasm.Pending -> ()
    | Reasm.Rejected why -> Alcotest.failf "rejected: %s" why
  in
  (* Interleave the two fragment streams. *)
  List.iter
    (fun (a, b) ->
      feed a;
      feed b)
    (List.combine f1 f2);
  check "datagram 1" true
    (match !done1 with Some out -> Bytes.equal out p1 | None -> false);
  check "datagram 2" true
    (match !done2 with Some out -> Bytes.equal out p2 | None -> false)

(* ---------- build -> parse roundtrips on random headers ---------- *)

let mac_gen =
  QCheck.Gen.(
    map
      (fun s -> Addr.Mac.of_bytes (Bytes.of_string s) 0)
      (string_size ~gen:char (return 6)))

let ip_gen =
  QCheck.Gen.(
    map
      (fun s -> Addr.Ipv4.of_bytes (Bytes.of_string s) 0)
      (string_size ~gen:char (return 4)))

let eth_gen =
  QCheck.Gen.(
    map3
      (fun dst src ethertype -> { Ethernet.dst; src; ethertype })
      mac_gen mac_gen (int_bound 0xFFFF))

let eth_arb =
  QCheck.make
    ~print:(fun h ->
      Printf.sprintf "%s -> %s type %#x"
        (Addr.Mac.to_string h.Ethernet.src)
        (Addr.Mac.to_string h.Ethernet.dst)
        h.Ethernet.ethertype)
    eth_gen

let prop_ethernet_build_parse =
  QCheck.Test.make ~name:"ethernet build -> parse roundtrip" ~count:300 eth_arb
    (fun h ->
      let b = Bytes.create 14 in
      Ethernet.build h b 0;
      match Ethernet.parse b 0 14 with
      | Error _ -> false
      | Ok (h', off) ->
        off = 14
        && Addr.Mac.equal h.Ethernet.dst h'.Ethernet.dst
        && Addr.Mac.equal h.Ethernet.src h'.Ethernet.src
        && h.Ethernet.ethertype = h'.Ethernet.ethertype)

let ipv4_gen =
  QCheck.Gen.(
    let* tos = int_bound 0xFF in
    let* total_length = int_range 20 40 in
    let* ident = int_bound 0xFFFF in
    let* dont_fragment = bool in
    let* more_fragments = bool in
    let* fragment_offset = int_bound 0x1FFF in
    let* ttl = int_bound 0xFF in
    let* protocol = int_bound 0xFF in
    let* src = ip_gen in
    let+ dst = ip_gen in
    {
      Ipv4.ihl = 5;
      tos;
      total_length;
      ident;
      dont_fragment;
      more_fragments;
      fragment_offset;
      ttl;
      protocol;
      src;
      dst;
    })

let ipv4_arb =
  QCheck.make
    ~print:(fun h ->
      Printf.sprintf "%s -> %s proto %d len %d frag %d%s%s"
        (Addr.Ipv4.to_string h.Ipv4.src)
        (Addr.Ipv4.to_string h.Ipv4.dst)
        h.Ipv4.protocol h.Ipv4.total_length h.Ipv4.fragment_offset
        (if h.Ipv4.dont_fragment then " DF" else "")
        (if h.Ipv4.more_fragments then " MF" else ""))
    ipv4_gen

let prop_ipv4_build_parse =
  QCheck.Test.make ~name:"ipv4 build -> parse roundtrip (checksum verified)"
    ~count:300 ipv4_arb (fun h ->
      let b = Bytes.create 40 in
      Ipv4.build h b 0;
      match Ipv4.parse b 0 40 with
      | Error _ -> false
      | Ok (h', off) -> off = 20 && h' = h)

let tcp_gen =
  QCheck.Gen.(
    let* src_port = int_bound 0xFFFF in
    let* dst_port = int_bound 0xFFFF in
    let* seq = map Int32.of_int (int_bound 0x3FFFFFFF) in
    let* ack = map Int32.of_int (int_bound 0x3FFFFFFF) in
    let* data_offset = int_range 5 15 in
    let* flags = int_bound 0x3F in
    let* window = int_bound 0xFFFF in
    let+ urgent = int_bound 0xFFFF in
    { Tcp.src_port; dst_port; seq; ack; data_offset; flags; window; urgent })

let tcp_arb =
  QCheck.make
    ~print:(fun h ->
      Printf.sprintf "%d -> %d seq %ld ack %ld do %d flags %#x" h.Tcp.src_port
        h.Tcp.dst_port h.Tcp.seq h.Tcp.ack h.Tcp.data_offset h.Tcp.flags)
    tcp_gen

let prop_tcp_build_parse =
  QCheck.Test.make ~name:"tcp build -> parse roundtrip" ~count:300 tcp_arb
    (fun h ->
      let b = Bytes.create 64 in
      Tcp.build h b 0;
      match Tcp.parse b 0 64 with
      | Error _ -> false
      | Ok (h', off) -> off = h.Tcp.data_offset * 4 && h' = h)

let prop_udp_build_parse =
  QCheck.Test.make ~name:"udp build -> parse roundtrip (checksum verified)"
    ~count:300
    QCheck.(
      triple (int_bound 0xFFFF) (int_bound 0xFFFF)
        (make QCheck.Gen.(string_size ~gen:char (0 -- 64))))
    (fun (src_port, dst_port, payload) ->
      let src = Addr.Ipv4.of_string "10.0.0.1"
      and dst = Addr.Ipv4.of_string "10.0.0.2" in
      let n = String.length payload in
      let dgram = Bytes.create (8 + n) in
      Bytes.blit_string payload 0 dgram 8 n;
      Udp.build { Udp.src_port; dst_port; length = 0 } ~src ~dst dgram 0
        ~payload_len:n;
      match Udp.parse dgram 0 (Bytes.length dgram) with
      | Error _ -> false
      | Ok (h', off) ->
        off = 8
        && h'.Udp.src_port = src_port
        && h'.Udp.dst_port = dst_port
        && h'.Udp.length = 8 + n
        && Udp.verify_checksum ~src ~dst dgram 0 (Bytes.length dgram))

let prop_fragment_reassemble_roundtrip =
  QCheck.Test.make ~name:"fragment/reassemble roundtrip at any mtu" ~count:200
    QCheck.(pair (int_range 48 1500) (int_range 1 5000))
    (fun (mtu, size) ->
      let payload = Bytes.init size (fun i -> Char.chr ((i * 31) land 0xFF)) in
      let frags = Reasm.fragment ~mtu ~header:frag_header ~payload in
      let r = Reasm.create () in
      let result =
        List.fold_left
          (fun acc (h, p) ->
            match Reasm.input r ~now:0.0 h p with
            | Reasm.Complete (_, out) -> Some out
            | Reasm.Pending -> acc
            | Reasm.Rejected _ -> acc)
          None frags
      in
      match result with Some out -> Bytes.equal out payload | None -> false)

(* ---------- cursor API: byte-for-byte against the record codecs ---------- *)

(* The receive fast path and the transmit builders use the cursor API
   ([*_at] reads, [check_at], [write]); the slow path and the tests use
   the record codecs.  These properties are what licenses mixing them:
   [write] emits exactly the bytes [build] does (the scratch buffer is
   pre-poisoned so an untouched byte can't pass), and every [*_at]
   accessor agrees with the corresponding [parse] field. *)

let prop_ethernet_cursor_equiv =
  QCheck.Test.make ~name:"ethernet cursor write/reads = record build/parse"
    ~count:300 eth_arb (fun h ->
      let b1 = Bytes.create 14 and b2 = Bytes.make 14 '\xAA' in
      Ethernet.build h b1 0;
      Ethernet.write ~dst:h.Ethernet.dst ~src:h.Ethernet.src
        ~ethertype:h.Ethernet.ethertype b2 0;
      Bytes.equal b1 b2
      && Ethernet.ethertype_at b1 0 = h.Ethernet.ethertype
      && Ethernet.dst_equal h.Ethernet.dst b1 0
      && Ethernet.dst_is_broadcast b1 0 = Addr.Mac.is_broadcast h.Ethernet.dst)

let prop_ipv4_cursor_equiv =
  QCheck.Test.make ~name:"ipv4 cursor write/reads = record build/parse"
    ~count:300 ipv4_arb (fun h ->
      let b1 = Bytes.create 20 and b2 = Bytes.make 20 '\xAA' in
      Ipv4.build h b1 0;
      Ipv4.write ~tos:h.Ipv4.tos ~total_length:h.Ipv4.total_length
        ~ident:h.Ipv4.ident ~dont_fragment:h.Ipv4.dont_fragment
        ~more_fragments:h.Ipv4.more_fragments
        ~fragment_offset:h.Ipv4.fragment_offset ~ttl:h.Ipv4.ttl
        ~protocol:h.Ipv4.protocol ~src:h.Ipv4.src ~dst:h.Ipv4.dst b2 0;
      let frag =
        (if h.Ipv4.dont_fragment then 0x4000 else 0)
        lor (if h.Ipv4.more_fragments then 0x2000 else 0)
        lor h.Ipv4.fragment_offset
      in
      Bytes.equal b1 b2
      && Ipv4.check_at b1 0 20 = Ok 20
      && Ipv4.ihl_at b1 0 = 5
      && Ipv4.tos_at b1 0 = h.Ipv4.tos
      && Ipv4.total_length_at b1 0 = h.Ipv4.total_length
      && Ipv4.ident_at b1 0 = h.Ipv4.ident
      && Ipv4.frag_at b1 0 = frag
      && Ipv4.ttl_at b1 0 = h.Ipv4.ttl
      && Ipv4.protocol_at b1 0 = h.Ipv4.protocol
      && Addr.Ipv4.equal (Ipv4.src_at b1 0) h.Ipv4.src
      && Addr.Ipv4.equal (Ipv4.dst_at b1 0) h.Ipv4.dst)

let prop_tcp_cursor_equiv =
  QCheck.Test.make ~name:"tcp cursor write/reads = record build/parse"
    ~count:300 tcp_arb (fun h ->
      let b1 = Bytes.create 20 and b2 = Bytes.make 20 '\xAA' in
      Tcp.build h b1 0;
      Tcp.write ~src_port:h.Tcp.src_port ~dst_port:h.Tcp.dst_port
        ~seq:h.Tcp.seq ~ack:h.Tcp.ack ~data_offset:h.Tcp.data_offset
        ~flags:h.Tcp.flags ~window:h.Tcp.window ~urgent:h.Tcp.urgent b2 0;
      Bytes.equal b1 b2
      && Tcp.check_at b1 0 64 = Ok (h.Tcp.data_offset * 4)
      && Tcp.src_port_at b1 0 = h.Tcp.src_port
      && Tcp.dst_port_at b1 0 = h.Tcp.dst_port
      && Int32.equal (Tcp.seq_at b1 0) h.Tcp.seq
      && Int32.equal (Tcp.ack_at b1 0) h.Tcp.ack
      && Tcp.data_offset_at b1 0 = h.Tcp.data_offset
      && Tcp.flags_at b1 0 = h.Tcp.flags
      && Tcp.window_at b1 0 = h.Tcp.window
      && Tcp.urgent_at b1 0 = h.Tcp.urgent)

let suite =
  [
    Alcotest.test_case "cksum rfc1071 example" `Quick test_cksum_rfc1071_example;
    Alcotest.test_case "cksum empty/odd" `Quick test_cksum_empty_and_odd;
    Alcotest.test_case "cksum self-verifies" `Quick test_cksum_verifies_to_zero;
    QCheck_alcotest.to_alcotest prop_simple_eq_unrolled;
    QCheck_alcotest.to_alcotest prop_chain_eq_flat;
    QCheck_alcotest.to_alcotest prop_chain_eq_flat_with_splits;
    Alcotest.test_case "cksum footprints" `Quick test_cksum_footprints;
    Alcotest.test_case "mac roundtrip" `Quick test_mac_roundtrip;
    Alcotest.test_case "ipv4 addr roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "bad addresses" `Quick test_bad_addresses;
    Alcotest.test_case "ethernet roundtrip" `Quick test_ethernet_roundtrip;
    Alcotest.test_case "ethernet too short" `Quick test_ethernet_too_short;
    Alcotest.test_case "ethernet strip/encap" `Quick test_ethernet_strip_encapsulate;
    Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip_hdr;
    Alcotest.test_case "ipv4 bad checksum" `Quick test_ipv4_bad_checksum;
    Alcotest.test_case "ipv4 bad version" `Quick test_ipv4_bad_version;
    Alcotest.test_case "ipv4 strip/encap" `Quick test_ipv4_strip_encapsulate;
    Alcotest.test_case "ipv4 strips padding" `Quick test_ipv4_strip_drops_padding;
    Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip;
    Alcotest.test_case "tcp checksum" `Quick test_tcp_checksum_roundtrip;
    Alcotest.test_case "tcp seq arithmetic" `Quick test_tcp_seq_arithmetic;
    QCheck_alcotest.to_alcotest prop_tcp_seq_total_order_window;
    QCheck_alcotest.to_alcotest prop_ethernet_build_parse;
    QCheck_alcotest.to_alcotest prop_ipv4_build_parse;
    QCheck_alcotest.to_alcotest prop_tcp_build_parse;
    QCheck_alcotest.to_alcotest prop_ethernet_cursor_equiv;
    QCheck_alcotest.to_alcotest prop_ipv4_cursor_equiv;
    QCheck_alcotest.to_alcotest prop_tcp_cursor_equiv;
    QCheck_alcotest.to_alcotest prop_udp_build_parse;
    Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "udp too short" `Quick test_udp_too_short;
    Alcotest.test_case "fragment passthrough" `Quick test_fragment_small_passthrough;
    Alcotest.test_case "fragment structure" `Quick test_fragment_structure;
    Alcotest.test_case "fragment DF" `Quick test_fragment_df_raises;
    Alcotest.test_case "reassembly orders" `Quick test_reassembly_in_order_and_reversed;
    Alcotest.test_case "reassembly overlap" `Quick test_reassembly_overlap_rejected;
    Alcotest.test_case "reassembly timeout" `Quick test_reassembly_timeout;
    Alcotest.test_case "reassembly interleaved" `Quick test_reassembly_interleaved_datagrams;
    QCheck_alcotest.to_alcotest prop_fragment_reassemble_roundtrip;
  ]
