(* Tests for the domain-based work pool behind the parallel sweep engine. *)

open Ldlp_par

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value ~default:"" old))
    f

let test_map_preserves_order () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  Alcotest.(check (list int))
    "parallel map = List.map" expected
    (Pool.map ~domains:4 (fun x -> x * x) xs);
  Alcotest.(check (list int))
    "sequential map = List.map" expected
    (Pool.map ~domains:1 (fun x -> x * x) xs)

let test_map_empty () =
  checki "empty, parallel" 0 (List.length (Pool.map ~domains:4 Fun.id []));
  checki "empty, sequential" 0 (List.length (Pool.map ~domains:1 Fun.id []))

let test_domains_exceed_tasks () =
  Alcotest.(check (list int))
    "more domains than tasks" [ 2; 4; 6 ]
    (Pool.map ~domains:16 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_exception_propagates () =
  Alcotest.check_raises "worker exception re-raised" (Failure "boom")
    (fun () ->
      ignore
        (Pool.map ~domains:4
           (fun i -> if i = 5 then failwith "boom" else i)
           (List.init 20 Fun.id)));
  (* Several failures: the lowest-indexed one wins, deterministically. *)
  Alcotest.check_raises "lowest index wins" (Failure "t3") (fun () ->
      ignore
        (Pool.map ~domains:4
           (fun i ->
             if i >= 3 then failwith (Printf.sprintf "t%d" i) else i)
           (List.init 20 Fun.id)))

let test_env_forces_sequential () =
  with_env "LDLP_DOMAINS" "1" (fun () ->
      checki "env resolves to 1" 1 (Pool.resolve_domains ());
      let self = Domain.self () in
      let ran_on = Pool.map (fun _ -> Domain.self ()) [ 1; 2; 3; 4; 5 ] in
      check "all tasks on the calling domain" true
        (List.for_all (fun d -> d = self) ran_on))

let test_env_parsing () =
  with_env "LDLP_DOMAINS" "3" (fun () ->
      checki "positive value honoured" 3 (Pool.available_domains ()));
  with_env "LDLP_DOMAINS" "0" (fun () ->
      check "zero ignored" true (Pool.available_domains () >= 1));
  with_env "LDLP_DOMAINS" "garbage" (fun () ->
      check "garbage ignored" true (Pool.available_domains () >= 1));
  with_env "LDLP_DOMAINS" "100000" (fun () ->
      checki "clamped to max" Pool.max_domains (Pool.available_domains ()))

let test_explicit_domains_validation () =
  check "explicit invalid count rejected" true
    (try
       ignore (Pool.resolve_domains ~domains:0 ());
       false
     with Invalid_argument _ -> true)

let test_map_reduce_ordered () =
  (* A non-commutative combine: input-order folding is observable. *)
  Alcotest.(check string)
    "ordered fold" "123456789"
    (Pool.map_reduce ~domains:4 ~map:string_of_int
       ~combine:(fun acc s -> acc ^ s)
       ~init:""
       [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]);
  checki "sum" 55
    (Pool.map_reduce ~domains:3 ~map:Fun.id ~combine:( + ) ~init:0
       (List.init 11 Fun.id))

let test_map_array () =
  Alcotest.(check (array int))
    "array map" [| 1; 4; 9 |]
    (Pool.map_array ~domains:2 (fun x -> x * x) [| 1; 2; 3 |])

let test_coarse_work_not_slower () =
  (* Regression pin for the sweep-speedup fix: with coarse tasks (>= 10 ms
     each) a 2-domain map must not lose to sequential.  Wall clock on a
     single-core host says nothing about the chunking, so the assertion
     only fires with real parallel hardware; the result equality always
     runs. *)
  let busy_ms = 12.0 in
  let spin _ =
    let t0 = Unix.gettimeofday () in
    let acc = ref 0 in
    while (Unix.gettimeofday () -. t0) *. 1e3 < busy_ms do
      acc := !acc + 1
    done;
    !acc > 0
  in
  let items = List.init 6 Fun.id in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, seq_s = time (fun () -> Pool.map ~domains:1 spin items) in
  let par, par_s = time (fun () -> Pool.map ~domains:2 spin items) in
  check "parallel computed everything" true (List.for_all Fun.id (seq @ par));
  if Domain.recommended_domain_count () >= 2 then
    check
      (Printf.sprintf "2-domain map (%.0f ms/item) not slower: %.3fs vs %.3fs"
         busy_ms par_s seq_s)
      true
      (par_s <= seq_s *. 1.10)

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "map empty input" `Quick test_map_empty;
    Alcotest.test_case "domains > tasks" `Quick test_domains_exceed_tasks;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "LDLP_DOMAINS=1 sequential" `Quick
      test_env_forces_sequential;
    Alcotest.test_case "LDLP_DOMAINS parsing" `Quick test_env_parsing;
    Alcotest.test_case "explicit domains validated" `Quick
      test_explicit_domains_validation;
    Alcotest.test_case "map_reduce input order" `Quick test_map_reduce_ordered;
    Alcotest.test_case "map_array" `Quick test_map_array;
    Alcotest.test_case "coarse 2-domain map not slower" `Slow
      test_coarse_work_not_slower;
  ]
