(* Tests for the report renderers: every table/figure printer must embed
   the paper-comparison anchors and render without raising on real
   generator output. *)

let check = Alcotest.(check bool)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let tiny =
  { Ldlp_model.Params.quick with Ldlp_model.Params.runs = 1; seconds = 0.05 }

let test_table1_render () =
  let s = Ldlp_report.Report.table1 (Ldlp_model.Figures.table1 ()) in
  check "title" true (contains s "Table 1");
  check "paper column" true (contains s "(paper)");
  check "exact total" true (contains s "30304");
  check "category row" true (contains s "Socket low")

let test_table3_render () =
  let s = Ldlp_report.Report.table3 (Ldlp_model.Figures.table3 ()) in
  check "title" true (contains s "Table 3");
  check "paper value" true (contains s "-41%");
  check "na marker" true (contains s "N/A")

let test_figure1_render () =
  let phases, funcs = Ldlp_model.Figures.figure1 () in
  let s = Ldlp_report.Report.figure1 phases funcs in
  check "phases" true (contains s "pkt intr");
  check "functions" true (contains s "tcp_input")

let test_fig8_render () =
  let s = Ldlp_report.Report.fig8 (Ldlp_model.Figures.fig8 ()) in
  check "crossover line" true (contains s "cold crossover");
  check "paper anchors" true (contains s "426 vs 176")

let test_fig56_render () =
  let points =
    Ldlp_model.Figures.rate_sweep ~params:tiny ~seed:3 ~rates:[ 2000.0; 8000.0 ] ()
  in
  let f5 = Ldlp_report.Report.fig5 points in
  let f6 = Ldlp_report.Report.fig6 points in
  check "fig5 title" true (contains f5 "Figure 5");
  check "fig5 chart legend" true (contains f5 "[C]=Conv-I");
  check "fig6 title" true (contains f6 "Figure 6");
  check "fig6 latency units" true (contains f6 "s")

let test_fig7_render () =
  let points =
    Ldlp_model.Figures.clock_sweep ~params:tiny ~seed:3 ~clocks_mhz:[ 30.0 ] ()
  in
  let s = Ldlp_report.Report.fig7 points in
  check "fig7 title" true (contains s "Figure 7");
  check "clock column" true (contains s "30")

let test_blocking_render () =
  let stack =
    {
      Ldlp_core.Blocking.layer_code_bytes = [ 6144; 6144; 6144; 6144; 6144 ];
      layer_data_bytes = [ 256; 256; 256; 256; 256 ];
      msg_bytes = 552;
      cycles_per_msg = 5 * 1652;
    }
  in
  let s =
    Ldlp_report.Report.blocking
      (Ldlp_core.Blocking.recommend Ldlp_core.Blocking.paper_machine stack)
  in
  check "classifies" true (contains s "small-message");
  check "batch" true (contains s "batch: 14")

let test_ablation_renders () =
  let batch =
    Ldlp_report.Report.ablation_batch
      (Ldlp_model.Figures.ablation_batch ~params:tiny ~seed:3 ())
  in
  check "batch policies listed" true (contains batch "dcache-fit");
  let dilution =
    Ldlp_report.Report.ablation_dilution (Ldlp_model.Figures.ablation_dilution ())
  in
  check "dilution paper anchor" true (contains dilution "~25%");
  let tx =
    Ldlp_report.Report.extension_txside
      (Ldlp_model.Figures.extension_txside ~params:tiny ~seed:3
         ~rates:[ 8000.0 ] ())
  in
  check "txside title" true (contains tx "transmit-side")

(* ---------- Bench_json ---------- *)

let sample_sweeps =
  [
    {
      Ldlp_report.Bench_json.name = "rate_sweep";
      points = 3;
      seq_seconds = 1.25;
      par_seconds = 0.5;
      domains = 4;
    };
    {
      Ldlp_report.Bench_json.name = "clock \"odd\" name\n";
      points = 0;
      seq_seconds = 0.0;
      par_seconds = 0.0;
      domains = 1;
    };
  ]

let test_bench_json_roundtrip () =
  let text = Ldlp_report.Bench_json.render ~host_cores:8 ~sweeps:sample_sweeps in
  match Ldlp_report.Bench_json.parse text with
  | Error e -> Alcotest.failf "render output failed its own schema: %s" e
  | Ok doc ->
    Alcotest.(check int) "host_cores" 8 doc.Ldlp_report.Bench_json.host_cores;
    check "sweeps roundtrip" true (doc.Ldlp_report.Bench_json.sweeps = sample_sweeps)

let test_bench_json_rejects () =
  let reject what text =
    match Ldlp_report.Bench_json.parse text with
    | Ok _ -> Alcotest.failf "%s unexpectedly accepted" what
    | Error _ -> ()
  in
  reject "garbage" "not json";
  reject "wrong schema"
    "{\"schema\": \"other/9\", \"host_cores\": 1, \"default_domains\": 1, \
     \"sweeps\": []}";
  reject "missing sweeps"
    "{\"schema\": \"ldlp-bench-sweeps/1\", \"host_cores\": 1, \
     \"default_domains\": 1}";
  reject "inconsistent speedup"
    "{\"schema\": \"ldlp-bench-sweeps/1\", \"host_cores\": 1, \
     \"default_domains\": 1, \"sweeps\": [{\"name\": \"x\", \"points\": 1, \
     \"seq_seconds\": 2.0, \"par_seconds\": 1.0, \"domains\": 2, \
     \"speedup\": 9.0}]}";
  (* A hand-written but valid document must parse: the reader accepts any
     JSON layout, not just the writer's pretty-printing. *)
  match
    Ldlp_report.Bench_json.parse
      "{\"schema\":\"ldlp-bench-sweeps/1\",\"host_cores\":2,\"default_domains\":2,\"sweeps\":[]}"
  with
  | Ok doc -> Alcotest.(check int) "compact layout" 2 doc.Ldlp_report.Bench_json.host_cores
  | Error e -> Alcotest.failf "compact layout rejected: %s" e

(* ---------- Observability: stats text + JSON documents ---------- *)

let tiny_sheets () =
  Ldlp_report.Report.observability_sheets ~domains:1 ~params:tiny ~seed:5
    ~rate:7000.0 ()

let test_observability_render () =
  let s =
    Ldlp_report.Report.observability ~domains:1 ~params:tiny ~seed:5
      ~rate:7000.0 ()
  in
  check "header" true (contains s "Observability");
  check "both disciplines" true
    (contains s "conventional @ 7000 msg/s" && contains s "ldlp @ 7000 msg/s");
  check "per-layer rows" true (contains s "L1");
  check "per-message rates" true (contains s "per-message");
  check "offered scalar" true (contains s "offered")

let test_observability_domain_independent () =
  (* The merged sheets must not depend on the worker count. *)
  let one =
    Ldlp_report.Report.observability ~domains:1 ~params:tiny ~seed:5 ()
  in
  let four =
    Ldlp_report.Report.observability ~domains:4 ~params:tiny ~seed:5 ()
  in
  check "domains=1 equals domains=4" true (one = four)

let test_stats_json_roundtrip () =
  let sheets = tiny_sheets () in
  let text = Ldlp_report.Bench_json.render_stats sheets in
  match Ldlp_report.Bench_json.parse_stats text with
  | Error e -> Alcotest.failf "render_stats output failed its schema: %s" e
  | Ok doc ->
    (* Two discipline sheets plus the fault-replay and flow-table
       scalar sheets. *)
    Alcotest.(check int)
      "one sheet per discipline plus the fault and flow sheets" 4
      (List.length doc.Ldlp_report.Bench_json.stats_sheets);
    List.iter2
      (fun m (s : Ldlp_report.Bench_json.stats_sheet) ->
        Alcotest.(check string)
          "label" (Ldlp_obs.Metrics.label m)
          s.Ldlp_report.Bench_json.s_label;
        Alcotest.(check int)
          "messages" (Ldlp_obs.Metrics.messages m)
          s.Ldlp_report.Bench_json.s_messages;
        let t = Ldlp_obs.Metrics.totals m in
        Alcotest.(check int)
          "imisses survive the roundtrip" t.Ldlp_obs.Metrics.t_imisses
          (List.fold_left
             (fun acc (l : Ldlp_report.Bench_json.layer_row) ->
               acc + l.Ldlp_report.Bench_json.lr_imisses)
             0 s.Ldlp_report.Bench_json.s_layers))
      sheets doc.Ldlp_report.Bench_json.stats_sheets

let sample_hots =
  [
    {
      Ldlp_report.Bench_json.h_name = "conventional";
      messages = 8000;
      wall_seconds = 0.21;
      messages_per_sec = 3500.0;
      imisses_per_msg = 960.0;
      dmisses_per_msg = 29.4;
      allocs_per_msg = 25.0;
      p50_latency_s = 0.13;
      p99_latency_s = 0.14;
      mean_batch = 1.0;
    };
    {
      Ldlp_report.Bench_json.h_name = "ldlp";
      messages = 13000;
      wall_seconds = 0.11;
      messages_per_sec = 8700.0;
      imisses_per_msg = 85.4;
      dmisses_per_msg = 65.5;
      allocs_per_msg = 25.0;
      p50_latency_s = 0.002;
      p99_latency_s = 0.02;
      mean_batch = 11.0;
    };
  ]

let test_hotpath_json_roundtrip () =
  let text =
    Ldlp_report.Bench_json.render_hotpath ~rate:9000.0 ~seed:1996
      ~metrics_overhead_pct:3.5 sample_hots
  in
  match Ldlp_report.Bench_json.parse_hotpath text with
  | Error e -> Alcotest.failf "render_hotpath output failed its schema: %s" e
  | Ok doc ->
    Alcotest.(check (float 1e-9)) "rate" 9000.0 doc.Ldlp_report.Bench_json.hd_rate;
    Alcotest.(check int) "seed" 1996 doc.Ldlp_report.Bench_json.hd_seed;
    check "disciplines roundtrip" true
      (doc.Ldlp_report.Bench_json.hots = sample_hots)

let test_hotpath_json_rejects () =
  let reject what text =
    match Ldlp_report.Bench_json.parse_hotpath text with
    | Ok _ -> Alcotest.failf "%s unexpectedly accepted" what
    | Error _ -> ()
  in
  reject "garbage" "nope";
  reject "wrong schema"
    "{\"schema\": \"ldlp-stats/1\", \"rate\": 1.0, \"seed\": 1, \
     \"metrics_overhead_pct\": 0.0, \"disciplines\": []}";
  reject "negative messages"
    "{\"schema\": \"ldlp-bench-hotpath/1\", \"rate\": 1.0, \"seed\": 1, \
     \"metrics_overhead_pct\": 0.0, \"disciplines\": [{\"name\": \"x\", \
     \"messages\": -1, \"wall_seconds\": 0.1, \"messages_per_sec\": 1.0, \
     \"imisses_per_msg\": 1.0, \"dmisses_per_msg\": 1.0, \"allocs_per_msg\": \
     1.0, \"p50_latency_s\": 0.1, \"p99_latency_s\": 0.1, \"mean_batch\": \
     1.0}]}"

let suite =
  [
    Alcotest.test_case "table1 render" `Quick test_table1_render;
    Alcotest.test_case "table3 render" `Quick test_table3_render;
    Alcotest.test_case "figure1 render" `Quick test_figure1_render;
    Alcotest.test_case "fig8 render" `Quick test_fig8_render;
    Alcotest.test_case "fig5/6 render" `Slow test_fig56_render;
    Alcotest.test_case "fig7 render" `Slow test_fig7_render;
    Alcotest.test_case "blocking render" `Quick test_blocking_render;
    Alcotest.test_case "ablation renders" `Slow test_ablation_renders;
    Alcotest.test_case "bench json roundtrip" `Quick test_bench_json_roundtrip;
    Alcotest.test_case "bench json rejects bad input" `Quick test_bench_json_rejects;
    Alcotest.test_case "observability render" `Quick test_observability_render;
    Alcotest.test_case "observability domain-independent" `Slow
      test_observability_domain_independent;
    Alcotest.test_case "stats json roundtrip" `Quick test_stats_json_roundtrip;
    Alcotest.test_case "hotpath json roundtrip" `Quick
      test_hotpath_json_roundtrip;
    Alcotest.test_case "hotpath json rejects bad input" `Quick
      test_hotpath_json_rejects;
  ]
