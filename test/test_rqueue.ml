(* Differential tests for the ring-buffer queue behind the engine's
   per-node backlogs: every observable behaviour is checked against
   [Stdlib.Queue] as the reference model over random operation traces,
   so wraparound and the doubling growth step cannot drift from plain
   FIFO semantics. *)

open Ldlp_core

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A trace step: [Push x] or [Pop].  Pops on an empty queue are skipped
   rather than generated away, so traces drain aggressively and the head
   index wraps many times within one trace. *)
type step = Push of int | Pop

let gen_step =
  QCheck.Gen.(
    frequency [ (3, map (fun x -> Push x) (int_bound 10_000)); (2, return Pop) ])

let pp_step = function
  | Push x -> Printf.sprintf "Push %d" x
  | Pop -> "Pop"

let arb_trace =
  QCheck.make
    ~print:(fun t -> String.concat "; " (List.map pp_step t))
    QCheck.Gen.(list_size (int_range 0 600) gen_step)

(* Apply one step to both queues and compare what each observer can see:
   pop results, lengths, emptiness and the full indexed peek window. *)
let agree_after_each_step trace =
  let q = Rqueue.create () and m = Queue.create () in
  List.for_all
    (fun step ->
      (match step with
      | Push x ->
        Rqueue.push q x;
        Queue.add x m
      | Pop ->
        if Queue.is_empty m then ()
        else begin
          let a = Rqueue.pop q and b = Queue.pop m in
          if a <> b then failwith "pop mismatch"
        end);
      Rqueue.length q = Queue.length m
      && Rqueue.is_empty q = Queue.is_empty m
      && List.for_all2 ( = )
           (List.init (Rqueue.length q) (Rqueue.get q))
           (List.of_seq (Queue.to_seq m)))
    trace

let prop_differential =
  QCheck.Test.make ~name:"rqueue = Stdlib.Queue on random traces" ~count:300
    arb_trace agree_after_each_step

(* Force the doubling path several times over: more pushes than
   [initial_capacity] with interleaved pops, so growth happens while the
   ring is wrapped (head > 0), the copy-out case that a naive resize
   gets wrong. *)
let prop_growth_while_wrapped =
  QCheck.Test.make ~name:"growth preserves order while wrapped" ~count:100
    QCheck.(pair (int_range 1 60) (int_range 200 900))
    (fun (drain, total) ->
      let drain = min drain total in
      let q = Rqueue.create () in
      for i = 0 to drain - 1 do
        Rqueue.push q i
      done;
      for _ = 1 to drain do
        ignore (Rqueue.pop q)
      done;
      (* Head is now at [drain mod capacity]; fill far past capacity. *)
      for i = 0 to total - 1 do
        Rqueue.push q i
      done;
      List.init total (fun _ -> Rqueue.pop q) |> List.mapi (fun i v -> i = v)
      |> List.for_all Fun.id)

let test_empty_pop_raises () =
  let q = Rqueue.create () in
  checkb "pop on empty raises" true
    (try
       ignore (Rqueue.pop q);
       false
     with Invalid_argument _ -> true);
  Rqueue.push q 7;
  ignore (Rqueue.pop q);
  checkb "pop after drain raises" true
    (try
       ignore (Rqueue.pop q);
       false
     with Invalid_argument _ -> true)

let test_get_bounds () =
  let q = Rqueue.create () in
  Rqueue.push q 10;
  Rqueue.push q 20;
  checki "get 0 is head" 10 (Rqueue.get q 0);
  checki "get 1 is next" 20 (Rqueue.get q 1);
  checkb "get out of range raises" true
    (try
       ignore (Rqueue.get q 2);
       false
     with Invalid_argument _ -> true);
  checkb "negative index raises" true
    (try
       ignore (Rqueue.get q (-1));
       false
     with Invalid_argument _ -> true)

let test_wraparound_exact_capacity () =
  (* Fill to exactly the initial capacity, drain half, refill: length
     accounting must survive the head wrapping to index 0. *)
  let cap = Rqueue.initial_capacity in
  let q = Rqueue.create () in
  for i = 0 to cap - 1 do
    Rqueue.push q i
  done;
  for i = 0 to (cap / 2) - 1 do
    checki "first half FIFO" i (Rqueue.pop q)
  done;
  for i = 0 to (cap / 2) - 1 do
    Rqueue.push q (cap + i)
  done;
  checki "length after wrap" cap (Rqueue.length q);
  for i = cap / 2 to cap + (cap / 2) - 1 do
    checki "second half FIFO" i (Rqueue.pop q)
  done;
  checkb "empty at end" true (Rqueue.is_empty q)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_differential;
    QCheck_alcotest.to_alcotest prop_growth_while_wrapped;
    Alcotest.test_case "pop on empty raises" `Quick test_empty_pop_raises;
    Alcotest.test_case "indexed peek bounds" `Quick test_get_bounds;
    Alcotest.test_case "wraparound at exact capacity" `Quick
      test_wraparound_exact_capacity;
  ]
