(* Tests for the sharded data path (lib/shard): the SPSC handoff ring,
   the replayable inter-shard handoff, the BSP shard driver, and the two
   cross-shard workloads (stackwork, tcpmini echo) whose results must be
   byte-identical at every shard count. *)

open Ldlp_shard

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* ---------- Ring: SPSC differential vs a stdlib Queue ---------- *)

let prop_ring_differential =
  QCheck.Test.make ~name:"ring push/pop tracks a reference queue" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_bound 2)))
    (fun (capacity, ops) ->
      let ring = Ring.create ~capacity () in
      let q = Queue.create () in
      let next = ref 0 in
      List.iter
        (fun op ->
          match op with
          | 0 | 1 ->
            (* Push: the ring must accept below capacity, refuse at it. *)
            let accepted = Ring.try_push ring !next in
            if accepted <> (Queue.length q < capacity) then
              QCheck.Test.fail_reportf "push %s at occupancy %d/%d"
                (if accepted then "accepted" else "refused")
                (Queue.length q) capacity;
            if accepted then Queue.push !next q;
            incr next
          | _ -> (
            match (Ring.pop_opt ring, Queue.take_opt q) with
            | None, None -> ()
            | Some a, Some b when a = b -> ()
            | got, want ->
              QCheck.Test.fail_reportf "pop %s, reference %s"
                (match got with None -> "None" | Some v -> string_of_int v)
                (match want with None -> "None" | Some v -> string_of_int v)))
        ops;
      (* Drain: everything the reference holds comes out, in order. *)
      Queue.iter
        (fun want ->
          match Ring.pop_opt ring with
          | Some got when got = want -> ()
          | _ -> QCheck.Test.fail_report "drain order diverged")
        q;
      Ring.pop_opt ring = None)

let test_ring_backpressure () =
  let ring = Ring.create ~capacity:3 () in
  List.iter (fun i -> check "accepted" true (Ring.try_push ring i)) [ 0; 1; 2 ];
  check "full ring refuses" false (Ring.try_push ring 3);
  check "still refusing" false (Ring.try_push ring 4);
  checki "refusals counted" 2 (Ring.refusals ring);
  checki "pushes counted" 3 (Ring.pushes ring);
  checki "watermark" 3 (Ring.max_occupancy ring);
  (* Nothing was dropped: exactly the accepted items come back out. *)
  Alcotest.(check (list int))
    "fifo, no loss" [ 0; 1; 2 ]
    (List.filter_map (fun _ -> Ring.pop_opt ring) [ (); (); () ]);
  check "empty after drain" true (Ring.pop_opt ring = None);
  (* Capacity is a bound on occupancy, not total throughput. *)
  check "reusable after drain" true (Ring.try_push ring 99);
  check "value intact" true (Ring.pop_opt ring = Some 99)

let test_ring_cross_domain () =
  (* One producer domain, consumer on the calling domain: every pushed
     item arrives exactly once, in order, through the atomic indices. *)
  let ring = Ring.create ~capacity:4 () in
  let n = 10_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Ring.try_push ring i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let got = ref 0 in
  while !got < n do
    match Ring.pop_opt ring with
    | Some v ->
      if v <> !got then Alcotest.failf "out of order: got %d want %d" v !got;
      incr got
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  checki "all items crossed" n !got;
  check "empty at the end" true (Ring.pop_opt ring = None)

(* ---------- Handoff: deterministic drain order ---------- *)

let handoff_send h ~shards items =
  (* Sends interleaved across source shards, mimicking emission order. *)
  List.iter
    (fun (src_group, seq, dst_group, v) ->
      Handoff.send h
        ~src_shard:(src_group mod shards)
        ~dst_shard:(dst_group mod shards)
        ~src_group ~seq ~dst_group v)
    items

let test_handoff_order_invariant () =
  (* The same item set must arrive sorted by (src_group, seq) whatever
     the shard count, ring capacity or drain-rotation seed. *)
  let items =
    [
      (2, 0, 0, "c0"); (0, 0, 1, "a0"); (1, 1, 0, "b1"); (0, 1, 2, "a1");
      (1, 0, 2, "b0"); (2, 1, 1, "c1"); (0, 2, 0, "a2");
    ]
  in
  let deliver ~shards ~capacity ~seed =
    let h = Handoff.create ~shards ~capacity ~seed () in
    handoff_send h ~shards items;
    List.concat_map
      (fun dst ->
        List.map
          (fun (it : _ Handoff.item) ->
            (it.Handoff.it_src_group, it.Handoff.it_seq, it.Handoff.it_value))
          (Handoff.receive h ~dst_shard:dst ~round:1))
      (List.init shards Fun.id)
    |> List.sort compare
  in
  let reference = deliver ~shards:1 ~capacity:64 ~seed:0 in
  List.iter
    (fun (shards, capacity, seed) ->
      Alcotest.(check (list (triple int int string)))
        (Printf.sprintf "shards=%d cap=%d seed=%d" shards capacity seed)
        reference
        (deliver ~shards ~capacity ~seed))
    [ (3, 64, 0); (3, 1, 0); (3, 64, 17); (2, 2, 5); (7, 1, 123) ];
  (* And per destination shard the order is exactly (src_group, seq). *)
  let h = Handoff.create ~shards:3 ~capacity:2 ~seed:9 () in
  handoff_send h ~shards:3 items;
  let to0 = Handoff.receive h ~dst_shard:0 ~round:1 in
  Alcotest.(check (list (pair int int)))
    "dst shard 0 sorted by (src_group, seq)"
    [ (0, 2); (1, 1); (2, 0) ]
    (List.map (fun (it : _ Handoff.item) -> (it.Handoff.it_src_group, it.Handoff.it_seq)) to0)

let test_handoff_overflow_never_drops () =
  (* Capacity-1 rings under a burst: refusals pile into overflow, and
     every item still arrives exactly once. *)
  let shards = 2 in
  let h = Handoff.create ~shards ~capacity:1 ~seed:3 () in
  let n = 50 in
  for seq = 0 to n - 1 do
    Handoff.send h ~src_shard:0 ~dst_shard:1 ~src_group:0 ~seq ~dst_group:1 seq
  done;
  let got = Handoff.receive h ~dst_shard:1 ~round:1 in
  checki "all delivered despite refusals" n (List.length got);
  Alcotest.(check (list int))
    "in sequence order"
    (List.init n Fun.id)
    (List.map (fun (it : _ Handoff.item) -> it.Handoff.it_value) got);
  let st = Handoff.stats h in
  checki "transferred" n st.Handoff.transferred;
  check "refusals recorded" true (st.Handoff.ring_refusals > 0)

(* ---------- Msg pools: per-shard ownership ---------- *)

let test_pool_leak_audit_and_cross_release () =
  let a = Ldlp_core.Msg.pool ~capacity:4 ~dummy:0 () in
  let b = Ldlp_core.Msg.pool ~capacity:4 ~dummy:0 () in
  let m = Ldlp_core.Msg.acquire a ~arrival:0.0 ~size:64 7 in
  checki "outstanding while held" 1
    (Ldlp_core.Msg.pool_stats a).Ldlp_core.Msg.p_outstanding;
  (* Releasing into the wrong shard's pool is a bug, not a transfer. *)
  check "cross-pool release raises" true
    (try
       Ldlp_core.Msg.release b m;
       false
     with Invalid_argument _ -> true);
  checki "victim pool untouched" 0
    (Ldlp_core.Msg.pool_stats b).Ldlp_core.Msg.p_outstanding;
  Ldlp_core.Msg.release a m;
  checki "leak-free at quiescence" 0
    (Ldlp_core.Msg.pool_stats a).Ldlp_core.Msg.p_outstanding

(* ---------- Stackwork: placement invariance ---------- *)

let prop_stackwork_placement_invariant =
  QCheck.Test.make
    ~name:"stackwork run is invariant to shards/capacity/seed/policy"
    ~count:60
    QCheck.(
      quad (int_bound 100_000) (int_range 2 5) (int_range 1 3) (int_bound 50))
    (fun (seed, shards, capacity, shard_seed) ->
      let spec = Stackwork.random_spec ~seed () in
      let base = Stackwork.run ~shards:1 spec in
      if not (Stackwork.ledger_ok base) then
        QCheck.Test.fail_report "reference ledger broken";
      let policy =
        if seed land 1 = 0 then Shard.Policy.Affinity else Shard.Policy.Hash
      in
      let r = Stackwork.run ~policy ~shard_seed ~capacity ~shards spec in
      (match Stackwork.diff_reports base r with
      | None -> ()
      | Some d -> QCheck.Test.fail_reportf "%s" d);
      if not (Stackwork.ledger_ok r) then
        QCheck.Test.fail_report "sharded ledger broken";
      Stackwork.wire_multiset base = Stackwork.wire_multiset r)

let test_stackwork_leak_audit () =
  let spec = Stackwork.random_spec ~seed:4242 () in
  List.iter
    (fun shards ->
      let r = Stackwork.run ~shards spec in
      Array.iter
        (fun g ->
          checki
            (Printf.sprintf "group %d pool balanced at shards=%d"
               g.Stackwork.gr_group shards)
            0 g.Stackwork.gr_pool_outstanding)
        r.Stackwork.r_groups)
    [ 1; 2; 3 ]

(* ---------- Stackwork: crash windows ---------- *)

(* A hand-built ring that keeps traffic flowing long enough for the
   crash window to intercept it: every delivery with positive TTL hops
   to the next group, so killing group 1 for rounds 1-2 must drop
   something on the floor — and ledger it. *)
let crash_spec =
  {
    Stackwork.sp_groups = 3;
    sp_layers = Array.make 3 [ Stackwork.Pass; Stackwork.Pass ];
    sp_policy = Ldlp_core.Batch.paper_default;
    sp_init = Array.init 3 (fun g -> List.init 6 (fun i -> ((g * 100) + i, 4)));
    sp_seed = 0;
    sp_crash = [ (1, 1, 3) ];
  }

let test_stackwork_crash_ledgered () =
  let r = Stackwork.run ~shards:1 crash_spec in
  check "crash window drops traffic" true (Stackwork.crashed_total r > 0);
  check "extended ledger holds under crash" true (Stackwork.ledger_ok r);
  Array.iter
    (fun g ->
      checki
        (Printf.sprintf "group %d pool balanced across crash"
           g.Stackwork.gr_group)
        0 g.Stackwork.gr_pool_outstanding)
    r.Stackwork.r_groups;
  (* Only the dead group's ledger carries the loss. *)
  Array.iter
    (fun g ->
      if g.Stackwork.gr_group <> 1 then
        checki
          (Printf.sprintf "group %d untouched by sibling crash"
             g.Stackwork.gr_group)
          0 g.Stackwork.gr_crashed)
    r.Stackwork.r_groups

let prop_stackwork_crash_placement_invariant =
  QCheck.Test.make
    ~name:"stackwork crash plans are invariant to shards/placement"
    ~count:60
    QCheck.(
      quad (int_bound 100_000) (int_range 2 5) (int_range 1 3) (int_bound 50))
    (fun (seed, shards, capacity, shard_seed) ->
      let spec = Stackwork.random_spec ~crash:true ~seed () in
      let base = Stackwork.run ~shards:1 spec in
      if not (Stackwork.ledger_ok base) then
        QCheck.Test.fail_report "reference crash ledger broken";
      let policy =
        if seed land 1 = 0 then Shard.Policy.Affinity else Shard.Policy.Hash
      in
      let r = Stackwork.run ~policy ~shard_seed ~capacity ~shards spec in
      (match Stackwork.diff_reports base r with
      | None -> ()
      | Some d -> QCheck.Test.fail_reportf "%s" d);
      if not (Stackwork.ledger_ok r) then
        QCheck.Test.fail_report "sharded crash ledger broken";
      Stackwork.wire_multiset base = Stackwork.wire_multiset r)

let test_stackwork_crash_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  let with_crash c = { crash_spec with Stackwork.sp_crash = c } in
  check "group out of range" true
    (raises (fun () -> ignore (Stackwork.run ~shards:1 (with_crash [ (9, 1, 2) ]))));
  check "crash at round 0" true
    (raises (fun () -> ignore (Stackwork.run ~shards:1 (with_crash [ (0, 0, 2) ]))));
  check "empty window" true
    (raises (fun () -> ignore (Stackwork.run ~shards:1 (with_crash [ (0, 2, 2) ]))));
  check "overlapping windows" true
    (raises (fun () ->
         ignore (Stackwork.run ~shards:1 (with_crash [ (0, 1, 3); (0, 2, 4) ]))))

let test_shard_driver_error_propagates () =
  (* A worker raising on a non-zero shard must surface on the caller. *)
  let boom shards =
    ignore
      (Shard.run ~shards ~groups:4
         ~make:(fun ~shard ~groups:_ ~emit:_ ->
           {
             Shard.w_deliver = (fun ~src_group:_ ~dst_group:_ (_ : int) -> ());
             w_step =
               (fun ~round ->
                 if shard = shards - 1 && round = 2 then failwith "boom";
                 round < 5);
             w_finish = (fun () -> ());
           })
         ())
  in
  List.iter
    (fun shards ->
      check
        (Printf.sprintf "shards=%d" shards)
        true
        (try
           boom shards;
           false
         with Failure m -> m = "boom"))
    [ 1; 3 ]

(* ---------- Echo: the full tcpmini exchange across shards ---------- *)

let test_echo_placement_invariant () =
  let cfg = Shard_echo.config ~conns:3 ~chunks:6 ~seed:77 () in
  let base = Shard_echo.run ~shards:1 cfg in
  check "reference completes cleanly" true (Shard_echo.all_ok base);
  List.iter
    (fun (shards, capacity, shard_seed, policy) ->
      let r = Shard_echo.run ~policy ~shard_seed ~capacity ~shards cfg in
      check
        (Printf.sprintf "byte-identical at shards=%d cap=%d" shards capacity)
        true
        (Shard_echo.equal_reports base r);
      check (Printf.sprintf "clean at shards=%d" shards) true
        (Shard_echo.all_ok r))
    [
      (2, 64, 0, Shard.Policy.Affinity);
      (3, 1, 11, Shard.Policy.Hash);
      (6, 2, 4, Shard.Policy.Affinity);
    ]

let test_echo_metrics_merge () =
  let cfg = Shard_echo.config ~conns:2 ~chunks:4 ~with_metrics:true () in
  let m1 = Shard_echo.run ~shards:1 cfg in
  let m3 = Shard_echo.run ~shards:3 cfg in
  match (m1.Shard_echo.e_metrics, m3.Shard_echo.e_metrics) with
  | Some a, Some b ->
    checki "merged message count matches single-domain"
      (Ldlp_obs.Metrics.messages a)
      (Ldlp_obs.Metrics.messages b);
    check "some traffic was metered" true (Ldlp_obs.Metrics.messages a > 0)
  | _ -> Alcotest.fail "metric sheets missing"

(* ---------- BENCH_shards.json schema roundtrip ---------- *)

let sample_shard_rows =
  [
    {
      Ldlp_report.Bench_json.sh_shards = 1;
      sh_components = 27;
      sh_completed = 128;
      sh_wall_s = 0.036;
      sh_wall_pairs_per_s = 3556.0;
      sh_cpu_s_max = 0.158;
      sh_cpu_pairs_per_s = 810.127;
      sh_ok = true;
    };
    {
      Ldlp_report.Bench_json.sh_shards = 4;
      sh_components = 27;
      sh_completed = 128;
      sh_wall_s = 0.012;
      sh_wall_pairs_per_s = 10666.7;
      sh_cpu_s_max = 0.0531;
      sh_cpu_pairs_per_s = 2410.547;
      sh_ok = true;
    };
  ]

let test_shards_json_roundtrip () =
  let json =
    Ldlp_report.Bench_json.render_shards ~seed:1996 ~hosts:256 ~degree:4
      ~pairs:32 ~host_cores:8 sample_shard_rows
  in
  match Ldlp_report.Bench_json.parse_shards json with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok doc ->
    checki "seed" 1996 doc.Ldlp_report.Bench_json.shd_seed;
    checki "hosts" 256 doc.Ldlp_report.Bench_json.shd_hosts;
    checki "pairs" 32 doc.Ldlp_report.Bench_json.shd_pairs;
    checki "host cores" 8 doc.Ldlp_report.Bench_json.shd_host_cores;
    checki "rows survive" 2 (List.length doc.Ldlp_report.Bench_json.shard_rows);
    List.iter2
      (fun (got : Ldlp_report.Bench_json.shard_row) want ->
        checki "shards" want.Ldlp_report.Bench_json.sh_shards
          got.Ldlp_report.Bench_json.sh_shards;
        checki "completed" want.Ldlp_report.Bench_json.sh_completed
          got.Ldlp_report.Bench_json.sh_completed;
        check "ok flag" want.Ldlp_report.Bench_json.sh_ok
          got.Ldlp_report.Bench_json.sh_ok)
      doc.Ldlp_report.Bench_json.shard_rows sample_shard_rows

let test_shards_json_rejects_bad () =
  let is_err = function Error _ -> true | Ok _ -> false in
  check "empty doc rejected" true
    (is_err (Ldlp_report.Bench_json.parse_shards "{}"));
  check "wrong schema tag rejected" true
    (is_err
       (Ldlp_report.Bench_json.parse_shards
          {|{"schema": "ldlp-bench-mesh/1", "seed": 1, "hosts": 4,
             "degree": 2, "pairs": 1, "host_cores": 1, "rows": []}|}));
  (* A cpu rate inconsistent with completed/cpu_s_max is a forged row. *)
  let forged =
    Ldlp_report.Bench_json.render_shards ~seed:1 ~hosts:4 ~degree:2 ~pairs:1
      ~host_cores:1
      [
        {
          (List.hd sample_shard_rows) with
          Ldlp_report.Bench_json.sh_cpu_pairs_per_s = 99_999.0;
        };
      ]
  in
  check "inconsistent cpu rate rejected" true
    (is_err (Ldlp_report.Bench_json.parse_shards forged))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ring_differential;
    Alcotest.test_case "ring backpressure never drops" `Quick
      test_ring_backpressure;
    Alcotest.test_case "ring crosses domains intact" `Quick
      test_ring_cross_domain;
    Alcotest.test_case "handoff drain order is placement-invariant" `Quick
      test_handoff_order_invariant;
    Alcotest.test_case "handoff overflow never drops" `Quick
      test_handoff_overflow_never_drops;
    Alcotest.test_case "per-shard pools: leaks and cross-release" `Quick
      test_pool_leak_audit_and_cross_release;
    QCheck_alcotest.to_alcotest prop_stackwork_placement_invariant;
    Alcotest.test_case "stackwork pools balanced per shard" `Quick
      test_stackwork_leak_audit;
    Alcotest.test_case "stackwork crash drops are ledgered" `Quick
      test_stackwork_crash_ledgered;
    QCheck_alcotest.to_alcotest prop_stackwork_crash_placement_invariant;
    Alcotest.test_case "stackwork crash plans validate" `Quick
      test_stackwork_crash_validation;
    Alcotest.test_case "worker exceptions propagate" `Quick
      test_shard_driver_error_propagates;
    Alcotest.test_case "echo byte-identical across shard counts" `Quick
      test_echo_placement_invariant;
    Alcotest.test_case "echo metric sheets merge" `Quick test_echo_metrics_merge;
    Alcotest.test_case "BENCH_shards.json roundtrip" `Quick
      test_shards_json_roundtrip;
    Alcotest.test_case "BENCH_shards.json rejects bad docs" `Quick
      test_shards_json_rejects_bad;
  ]
