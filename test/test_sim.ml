(* Tests for the discrete-event substrate: heap, RNG, statistics,
   histograms, engine, table/chart rendering. *)

open Ldlp_sim

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf msg a b = Alcotest.(check (float 1e-9)) msg a b

(* ---------- Heap ---------- *)

let test_heap_basic () =
  let h = Heap.create () in
  check "fresh heap empty" true (Heap.is_empty h);
  Heap.push h 3.0 "c";
  Heap.push h 1.0 "a";
  Heap.push h 2.0 "b";
  checki "size" 3 (Heap.size h);
  Alcotest.(check (option (pair (float 0.0) string)))
    "peek min" (Some (1.0, "a")) (Heap.peek h);
  Alcotest.(check (option (pair (float 0.0) string)))
    "pop min" (Some (1.0, "a")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string)))
    "pop next" (Some (2.0, "b")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string)))
    "pop last" (Some (3.0, "c")) (Heap.pop h);
  check "empty after drain" true (Heap.pop h = None)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 v) [ 1; 2; 3; 4; 5 ];
  let order = List.init 5 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list int)) "ties pop in insertion order" [ 1; 2; 3; 4; 5 ] order

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 ();
  Heap.clear h;
  check "cleared" true (Heap.is_empty h)

let test_heap_to_sorted_list () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.; 1.; 4.; 2.; 3. ];
  let keys = List.map fst (Heap.to_sorted_list h) in
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.; 2.; 3.; 4.; 5. ] keys;
  checki "non-destructive" 5 (Heap.size h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k k) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

let prop_heap_fifo_ties =
  (* Equal keys must pop in insertion order — the event loop relies on this
     for same-timestamp events. *)
  QCheck.Test.make ~name:"heap is FIFO within equal keys" ~count:200
    QCheck.(list_of_size Gen.(0 -- 60) (int_bound 4))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h (float_of_int k) (k, i)) keys;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let inserted = List.mapi (fun i k -> (k, i)) keys in
      drain [] = List.stable_sort (fun (a, _) (b, _) -> compare a b) inserted)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check "same stream" true (Rng.int64 a = Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  check "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_int_range () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let test_rng_unit_float_range () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let v = Rng.unit_float rng in
    check "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:5 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:2.5
  done;
  let m = !sum /. float_of_int n in
  check "mean within 3%" true (Float.abs (m -. 2.5) < 0.075)

let test_rng_pareto_scale () =
  let rng = Rng.create ~seed:6 in
  for _ = 1 to 1000 do
    check "pareto >= scale" true (Rng.pareto rng ~shape:1.2 ~scale:3.0 >= 3.0)
  done

let test_rng_geometric () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 1000 do
    check "geometric >= 1" true (Rng.geometric rng ~p:0.3 >= 1)
  done;
  checki "p=1 is always 1" 1 (Rng.geometric rng ~p:1.0)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:9 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  check "children differ" true (Rng.int64 c1 <> Rng.int64 c2)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:10 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let prop_rng_deterministic =
  (* Reproducibility is the whole experiment design: a seed pins every
     figure.  Same seed, same draw sequence, across all the generators. *)
  QCheck.Test.make ~name:"rng: same seed gives the same stream" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let a = Rng.create ~seed and b = Rng.create ~seed in
      List.for_all Fun.id
        (List.init 50 (fun i ->
             match i mod 4 with
             | 0 -> Rng.int64 a = Rng.int64 b
             | 1 -> Rng.int a 1000 = Rng.int b 1000
             | 2 -> Float.equal (Rng.unit_float a) (Rng.unit_float b)
             | _ ->
               Float.equal
                 (Rng.exponential a ~mean:2.0)
                 (Rng.exponential b ~mean:2.0))))

let prop_rng_distinct_seeds =
  QCheck.Test.make ~name:"rng: distinct seeds give distinct streams"
    ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (s1, s2) ->
      QCheck.assume (s1 <> s2);
      let a = Rng.create ~seed:s1 and b = Rng.create ~seed:s2 in
      (* 16 consecutive 64-bit draws all colliding is (practically) only
         possible if seeding folds both seeds to the same state. *)
      List.exists Fun.id (List.init 16 (fun _ -> Rng.int64 a <> Rng.int64 b)))

(* ---------- Stats ---------- *)

let test_stats_known () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  checki "count" 8 (Stats.count s);
  checkf "mean" 5.0 (Stats.mean s);
  checkf "min" 2.0 (Stats.min s);
  checkf "max" 9.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance s)

let test_stats_empty () =
  let s = Stats.create () in
  checkf "empty mean" 0.0 (Stats.mean s);
  checkf "empty variance" 0.0 (Stats.variance s)

let prop_stats_merge =
  QCheck.Test.make ~name:"stats merge equals combined stream" ~count:200
    QCheck.(pair (list (float_bound_inclusive 100.0)) (list (float_bound_inclusive 100.0)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () and c = Stats.create () in
      List.iter (Stats.add a) xs;
      List.iter (Stats.add b) ys;
      List.iter (Stats.add c) (xs @ ys);
      let m = Stats.merge a b in
      Stats.count m = Stats.count c
      && Float.abs (Stats.mean m -. Stats.mean c) < 1e-6
      && Float.abs (Stats.variance m -. Stats.variance c) < 1e-6)

(* ---------- Hist ---------- *)

let test_hist_percentiles () =
  let h = Hist.create () in
  for i = 1 to 1000 do
    Hist.add h (float_of_int i *. 1e-4)
  done;
  checki "count" 1000 (Hist.count h);
  let p50 = Hist.median h in
  check "median near 0.05 (log-bucket tolerance)" true
    (p50 > 0.04 && p50 < 0.065);
  let p99 = Hist.percentile h 0.99 in
  check "p99 near 0.099" true (p99 > 0.08 && p99 <= 0.1);
  check "p100 bounded by max" true (Hist.percentile h 1.0 <= Hist.max h +. 1e-12)

let test_hist_empty () =
  let h = Hist.create () in
  checkf "empty percentile" 0.0 (Hist.percentile h 0.5);
  checki "empty count" 0 (Hist.count h)

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.add a) [ 0.001; 0.002 ];
  List.iter (Hist.add b) [ 0.003; 0.004 ];
  Hist.merge_into ~dst:a b;
  checki "merged count" 4 (Hist.count a);
  checkf "merged mean" 0.0025 (Hist.mean a)

let test_hist_clamps () =
  let h = Hist.create ~lo:1e-6 ~hi:1.0 () in
  Hist.add h 1e-12;
  Hist.add h 100.0;
  checki "clamped samples counted" 2 (Hist.count h)

(* ---------- Engine ---------- *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 2.0 (fun () -> log := 2 :: !log);
  Engine.at e 1.0 (fun () -> log := 1 :: !log);
  Engine.at e 3.0 (fun () -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  checkf "clock at last event" 3.0 (Engine.now e)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.at e 1.0 (fun () -> incr fired);
  Engine.at e 5.0 (fun () -> incr fired);
  Engine.run ~until:2.0 e;
  checki "only early event" 1 !fired;
  checkf "clock at horizon" 2.0 (Engine.now e);
  checki "late event pending" 1 (Engine.pending e)

let test_engine_schedule_during_run () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 1.0 (fun () ->
      log := "first" :: !log;
      Engine.after e 1.0 (fun () -> log := "second" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "chained" [ "first"; "second" ] (List.rev !log)

let test_engine_past_raises () =
  let e = Engine.create () in
  Engine.at e 1.0 (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "scheduling in the past"
    (Invalid_argument "Engine.at: time 0.5 is before now 1") (fun () ->
      Engine.at e 0.5 (fun () -> ()))

let test_engine_stop () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.at e 1.0 (fun () ->
      incr fired;
      Engine.stop e);
  Engine.at e 2.0 (fun () -> incr fired);
  Engine.run e;
  checki "stopped after first" 1 !fired

(* ---------- Table / Chart ---------- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table_render' () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  check "contains 333" true (contains s "333");
  check "contains header" true (contains s "bb")

let test_table_tsv () =
  let s = Table.tsv ~header:[ "x"; "y" ] [ [ "1"; "2" ] ] in
  Alcotest.(check string) "tsv" "x\ty\n1\t2\n" s

let test_fmt_si () =
  Alcotest.(check string) "micro" "250u" (Table.fmt_si 250e-6);
  Alcotest.(check string) "kilo" "1.5k" (Table.fmt_si 1500.0);
  Alcotest.(check string) "milli" "10m" (Table.fmt_si 0.01)

let test_fmt_pct () =
  Alcotest.(check string) "positive" "+17%" (Table.fmt_pct 0.17);
  Alcotest.(check string) "negative" "-41%" (Table.fmt_pct (-0.41));
  Alcotest.(check string) "zero" "0%" (Table.fmt_pct 0.0)

let test_chart_plot () =
  let s =
    Chart.plot
      [ { Chart.label = "A"; points = [ (0.0, 1.0); (1.0, 2.0) ] } ]
  in
  check "chart nonempty" true (String.length s > 0);
  check "legend present" true (contains s "[A]=A")

let test_chart_logy () =
  let s =
    Chart.plot ~logy:true
      [ { Chart.label = "L"; points = [ (0.0, 1e-4); (1.0, 10.0) ] } ]
  in
  check "log scale noted" true (contains s "log scale")

let test_chart_empty () =
  Alcotest.(check string) "no data" "(no data)\n" (Chart.plot [])

let suite =
  [
    Alcotest.test_case "heap basic" `Quick test_heap_basic;
    Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap clear" `Quick test_heap_clear;
    Alcotest.test_case "heap to_sorted_list" `Quick test_heap_to_sorted_list;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_heap_fifo_ties;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    QCheck_alcotest.to_alcotest prop_rng_deterministic;
    QCheck_alcotest.to_alcotest prop_rng_distinct_seeds;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng float range" `Quick test_rng_unit_float_range;
    Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng pareto scale" `Quick test_rng_pareto_scale;
    Alcotest.test_case "rng geometric" `Quick test_rng_geometric;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "stats known values" `Quick test_stats_known;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    QCheck_alcotest.to_alcotest prop_stats_merge;
    Alcotest.test_case "hist percentiles" `Quick test_hist_percentiles;
    Alcotest.test_case "hist empty" `Quick test_hist_empty;
    Alcotest.test_case "hist merge" `Quick test_hist_merge;
    Alcotest.test_case "hist clamps" `Quick test_hist_clamps;
    Alcotest.test_case "engine order" `Quick test_engine_order;
    Alcotest.test_case "engine until" `Quick test_engine_until;
    Alcotest.test_case "engine chained" `Quick test_engine_schedule_during_run;
    Alcotest.test_case "engine past raises" `Quick test_engine_past_raises;
    Alcotest.test_case "engine stop" `Quick test_engine_stop;
    Alcotest.test_case "table render" `Quick test_table_render';
    Alcotest.test_case "table tsv" `Quick test_table_tsv;
    Alcotest.test_case "fmt si" `Quick test_fmt_si;
    Alcotest.test_case "fmt pct" `Quick test_fmt_pct;
    Alcotest.test_case "chart plot" `Quick test_chart_plot;
    Alcotest.test_case "chart logy" `Quick test_chart_logy;
    Alcotest.test_case "chart empty" `Quick test_chart_empty;
  ]
