(* Tests for the chaos-soak harness: the acceptance scenario (loss +
   duplication + reordering + corruption survived with exact stream
   integrity, no mbuf leak and Conventional/LDLP equivalence), the
   pristine baseline (zero retransmissions), and determinism of the whole
   matrix across domain counts. *)

open Ldlp_soak

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let test_scenario_matrix () =
  let scs = Soak.scenarios ~seed:1996 ~count:5 in
  checki "count" 5 (List.length scs);
  let s0 = List.nth scs 0 in
  check "scenario 0 pristine" true (Ldlp_fault.Plan.is_none s0.Soak.plan);
  let s1 = List.nth scs 1 in
  check "scenario 1 is the acceptance mix" true
    (s1.Soak.plan.Ldlp_fault.Plan.drop = 0.05
    && s1.Soak.plan.Ldlp_fault.Plan.dup = 0.02
    && s1.Soak.plan.Ldlp_fault.Plan.corrupt = 0.001
    && s1.Soak.plan.Ldlp_fault.Plan.reorder = 0.1
    && s1.Soak.plan.Ldlp_fault.Plan.reorder_window = 4);
  (* Distinct seeds per scenario, and every random plan validates. *)
  let seeds = List.map (fun s -> s.Soak.seed) scs in
  checki "seeds distinct" 5 (List.length (List.sort_uniq compare seeds));
  List.iter (fun s -> Ldlp_fault.Plan.validate s.Soak.plan) scs

let test_pristine_scenario () =
  let sc = List.hd (Soak.scenarios ~seed:1996 ~count:1) in
  let r = Soak.run_scenario sc in
  check "report ok" true (Soak.report_ok r);
  checki "no retransmits without faults" 0 r.Soak.conventional.Soak.retransmits;
  checki "no retransmits under ldlp either" 0 r.Soak.ldlp.Soak.retransmits;
  checki "nothing dropped" 0 r.Soak.conventional.Soak.dropped;
  checki "every byte echoed" (sc.Soak.chunks * sc.Soak.chunk_bytes)
    r.Soak.conventional.Soak.echoed_bytes

(* The issue's acceptance scenario: 5% loss + duplication + 4-frame
   reorder window + 0.1% corruption must still deliver the exact byte
   stream under both disciplines, leak-free. *)
let test_acceptance_scenario () =
  let sc = List.nth (Soak.scenarios ~seed:1996 ~count:2) 1 in
  let r = Soak.run_scenario sc in
  check "completed (conventional)" true r.Soak.conventional.Soak.completed;
  check "completed (ldlp)" true r.Soak.ldlp.Soak.completed;
  check "byte-stream integrity (conventional)" true
    r.Soak.conventional.Soak.integrity;
  check "byte-stream integrity (ldlp)" true r.Soak.ldlp.Soak.integrity;
  check "zero mbuf leak (conventional)" true r.Soak.conventional.Soak.leak_free;
  check "zero mbuf leak (ldlp)" true r.Soak.ldlp.Soak.leak_free;
  check "disciplines equivalent" true r.Soak.equivalent;
  (* The chaos was real: the link dropped frames and recovery ran. *)
  check "frames were dropped" true (r.Soak.ldlp.Soak.dropped > 0);
  check "retransmissions happened" true (r.Soak.ldlp.Soak.retransmits > 0)

let test_equivalence_includes_fault_sequence () =
  (* Conventional and LDLP see the same impairment draws, so their
     outcomes agree not just on bytes but on the wire-level fault mix. *)
  let sc = List.nth (Soak.scenarios ~seed:1996 ~count:2) 1 in
  let r = Soak.run_scenario sc in
  let c = r.Soak.conventional and l = r.Soak.ldlp in
  checki "same echoed bytes" c.Soak.echoed_bytes l.Soak.echoed_bytes;
  checki "same drops" c.Soak.dropped l.Soak.dropped;
  checki "same duplicates" c.Soak.duplicated l.Soak.duplicated;
  checki "same corruptions" c.Soak.corrupted l.Soak.corrupted;
  checki "same reorders" c.Soak.reordered l.Soak.reordered

let test_run_all_deterministic_across_domains () =
  let scs = Soak.scenarios ~seed:1996 ~count:4 in
  let a = Soak.run_all ~domains:1 scs in
  let b = Soak.run_all ~domains:3 scs in
  check "identical reports at 1 and 3 domains" true (a = b);
  Alcotest.(check string)
    "identical rendered table" (Soak.render a) (Soak.render b);
  check "all ok" true (List.for_all Soak.report_ok a)

(* A server crash/restart in the middle of an otherwise pristine
   transfer: the outage plus the wiped NIC rings force retransmission,
   and the byte stream must still arrive intact under both disciplines. *)
let crash_scenario =
  {
    (List.hd (Soak.scenarios ~seed:1996 ~count:1)) with
    (* The pristine exchange finishes in ~20 ms of sim time, so the
       outage starts at 8 ms to land mid-transfer. *)
    Soak.crash = [ (0.008, 0.05) ];
  }

let test_crash_restart_recovers () =
  let r = Soak.run_scenario crash_scenario in
  check "completed (conventional)" true r.Soak.conventional.Soak.completed;
  check "completed (ldlp)" true r.Soak.ldlp.Soak.completed;
  check "byte-stream integrity (conventional)" true
    r.Soak.conventional.Soak.integrity;
  check "byte-stream integrity (ldlp)" true r.Soak.ldlp.Soak.integrity;
  check "no leak (conventional)" true r.Soak.conventional.Soak.leak_free;
  check "no leak (ldlp)" true r.Soak.ldlp.Soak.leak_free;
  check "disciplines equivalent" true r.Soak.equivalent;
  check "report ok" true (Soak.report_ok r);
  check "crash cost retransmits" true (r.Soak.ldlp.Soak.retransmits > 0)

let test_crash_restart_duplex () =
  let r = Soak.run_scenario ~duplex:true crash_scenario in
  check "report ok (duplex)" true (Soak.report_ok r);
  check "crash cost retransmits (duplex)" true
    (r.Soak.ldlp.Soak.retransmits > 0)

let test_crash_validation () =
  let bad = { crash_scenario with Soak.crash = [ (0.008, 0.008) ] } in
  check "empty crash episode rejected" true
    (try
       ignore (Soak.run_scenario bad);
       false
     with Invalid_argument _ -> true)

let test_loss_ladder () =
  let rows = Soak.loss_ladder ~seed:1996 ~rates:[ 0.0; 0.05 ] in
  match rows with
  | [ clean; lossy ] ->
    check "clean rung ok" true clean.Soak.ok;
    check "lossy rung ok" true lossy.Soak.ok;
    checki "no retransmits at 0 loss" 0 clean.Soak.ladder_retransmits;
    check "loss costs retransmits" true (lossy.Soak.ladder_retransmits > 0);
    check "loss costs goodput" true (lossy.Soak.goodput < clean.Soak.goodput);
    check "goodput positive" true (lossy.Soak.goodput > 0.0)
  | l -> Alcotest.failf "expected 2 rungs, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "scenario matrix" `Quick test_scenario_matrix;
    Alcotest.test_case "pristine: zero retransmits" `Quick
      test_pristine_scenario;
    Alcotest.test_case "acceptance chaos scenario" `Quick
      test_acceptance_scenario;
    Alcotest.test_case "equivalence includes fault sequence" `Quick
      test_equivalence_includes_fault_sequence;
    Alcotest.test_case "run_all deterministic across domains" `Quick
      test_run_all_deterministic_across_domains;
    Alcotest.test_case "crash/restart mid-transfer recovers" `Quick
      test_crash_restart_recovers;
    Alcotest.test_case "crash/restart under duplex hosts" `Quick
      test_crash_restart_duplex;
    Alcotest.test_case "crash episodes validated" `Quick test_crash_validation;
    Alcotest.test_case "loss ladder" `Quick test_loss_ladder;
  ]
