(* Tests for the miniature TCP/IP host: socket buffers, the PCB table and
   its single-entry cache, the TCP input state machine (handshake, header
   prediction, delayed ACK, FIN, RST), and the assembled stack under both
   scheduling disciplines. *)

open Ldlp_tcpmini
module Tcp = Ldlp_packet.Tcp

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checks = Alcotest.(check string)

(* ---------- Sockbuf ---------- *)

let test_sockbuf_basic () =
  let sb = Sockbuf.create ~hiwat:10 () in
  checki "empty" 0 (Sockbuf.length sb);
  checki "space" 10 (Sockbuf.space sb);
  checki "append accepts" 5 (Sockbuf.append sb (Bytes.of_string "hello"));
  checki "length" 5 (Sockbuf.length sb);
  checks "read" "hel" (Bytes.to_string (Sockbuf.read sb 3));
  checki "length after read" 2 (Sockbuf.length sb);
  checks "read rest" "lo" (Bytes.to_string (Sockbuf.read_all sb))

let test_sockbuf_hiwat () =
  let sb = Sockbuf.create ~hiwat:8 () in
  checki "partial accept" 8 (Sockbuf.append sb (Bytes.of_string "0123456789"));
  checki "full" 0 (Sockbuf.space sb);
  checki "rejects when full" 0 (Sockbuf.append sb (Bytes.of_string "x"));
  ignore (Sockbuf.read sb 4);
  checki "space recovered" 4 (Sockbuf.space sb)

let test_sockbuf_wakeups () =
  let sb = Sockbuf.create () in
  ignore (Sockbuf.append sb (Bytes.of_string "a"));
  ignore (Sockbuf.append sb (Bytes.of_string "b"));
  checki "one wakeup while non-empty" 1 (Sockbuf.wakeups sb);
  ignore (Sockbuf.read_all sb);
  ignore (Sockbuf.append sb (Bytes.of_string "c"));
  checki "wakeup after drain" 2 (Sockbuf.wakeups sb)

let prop_sockbuf_fifo =
  QCheck.Test.make ~name:"sockbuf preserves byte order" ~count:200
    QCheck.(list_of_size Gen.(0 -- 10) (QCheck.string_of_size Gen.(0 -- 50)))
    (fun chunks ->
      let sb = Sockbuf.create ~hiwat:100000 () in
      List.iter (fun c -> ignore (Sockbuf.append sb (Bytes.of_string c))) chunks;
      Bytes.to_string (Sockbuf.read_all sb) = String.concat "" chunks)

(* ---------- Pcb ---------- *)

let ipa = Ldlp_packet.Addr.Ipv4.of_string

let test_pcb_listen_and_lookup () =
  let t = Pcb.create_table () in
  let l = Pcb.listen t ~port:80 () in
  check "listener state" true (l.Pcb.state = Pcb.Listen);
  (match Pcb.lookup t ~local_port:80 ~remote:(ipa "10.0.0.9", 1234) with
  | Some pcb -> check "falls back to listener" true (pcb == l)
  | None -> Alcotest.fail "lookup");
  check "no listener on other port" true
    (Pcb.lookup t ~local_port:81 ~remote:(ipa "10.0.0.9", 1234) = None)

let test_pcb_double_listen_rejected () =
  let t = Pcb.create_table () in
  ignore (Pcb.listen t ~port:80 ());
  check "double bind raises" true
    (try
       ignore (Pcb.listen t ~port:80 ());
       false
     with Invalid_argument _ -> true)

let test_pcb_cache_hits () =
  let t = Pcb.create_table () in
  let l = Pcb.listen t ~port:80 () in
  let remote = (ipa "10.0.0.9", 1234) in
  let conn = Pcb.insert_connection t ~listener:l ~remote in
  (* First lookup after insert hits the cache (insert primes it). *)
  (match Pcb.lookup t ~local_port:80 ~remote with
  | Some pcb -> check "found connection" true (pcb == conn)
  | None -> Alcotest.fail "lookup");
  let s = Pcb.stats t in
  checki "cache hit recorded" 1 s.Pcb.cache_hits;
  (* A different remote misses the cache but hits the listener. *)
  ignore (Pcb.lookup t ~local_port:80 ~remote:(ipa "10.0.0.8", 99));
  let s = Pcb.stats t in
  checki "still one cache hit" 1 s.Pcb.cache_hits;
  checki "two lookups" 2 s.Pcb.lookups

let test_pcb_drop () =
  let t = Pcb.create_table () in
  let l = Pcb.listen t ~port:80 () in
  let remote = (ipa "10.0.0.9", 1234) in
  let conn = Pcb.insert_connection t ~listener:l ~remote in
  checki "one connection" 1 (Pcb.connections t);
  Pcb.drop t conn;
  checki "removed" 0 (Pcb.connections t);
  check "closed" true (conn.Pcb.state = Pcb.Closed);
  (* Lookup now falls back to the listener, not a stale cache entry. *)
  match Pcb.lookup t ~local_port:80 ~remote with
  | Some pcb -> check "listener again" true (pcb == l)
  | None -> Alcotest.fail "lookup after drop"

(* ---------- Host / tcp_input end-to-end ---------- *)

let client_ip = ipa "10.1.0.2"

let make_host () =
  let pool = Ldlp_buf.Pool.create () in
  let host =
    Host.create ~pool
      ~mac:(Ldlp_packet.Addr.Mac.of_string "02:00:00:00:00:01")
      ~ip:(ipa "10.1.0.1") ()
  in
  (pool, host)

(* Run a list of client frames through the host's stack; returns the
   host's transmissions, parsed. *)
let run_frames ?(discipline = Ldlp_core.Sched.Conventional) host frames =
  let tx = ref [] in
  let sched =
    Ldlp_core.Sched.create ~discipline ~layers:(Host.layers host)
      ~down:(fun m ->
        match Host.parse_tx host m.Ldlp_core.Msg.payload with
        | Some r -> tx := r :: !tx
        | None -> Alcotest.fail "host transmitted an unparseable frame")
      ()
  in
  List.iter
    (fun f ->
      Ldlp_core.Sched.inject sched
        (Ldlp_core.Msg.make ~size:(Ldlp_buf.Mbuf.length f) (Host.wrap host f)))
    frames;
  Ldlp_core.Sched.run sched;
  List.rev !tx

let handshake host ~src_port =
  let syn =
    Host.client_frame host ~src_ip:client_ip ~src_port ~dst_port:80 ~seq:100l
      ~ack:0l ~flags:Tcp.flag_syn ()
  in
  match run_frames host [ syn ] with
  | [ (h, _) ] ->
    check "syn-ack" true (Tcp.has_flag h Tcp.flag_syn && Tcp.has_flag h Tcp.flag_ack);
    check "acks isn+1" true (Int32.equal h.Tcp.ack 101l);
    (* Complete with the handshake ACK. *)
    let ack =
      Host.client_frame host ~src_ip:client_ip ~src_port ~dst_port:80
        ~seq:101l
        ~ack:(Tcp.seq_add h.Tcp.seq 1)
        ~flags:Tcp.flag_ack ()
    in
    checki "no reply to bare ack" 0 (List.length (run_frames host [ ack ]));
    h.Tcp.seq
  | l -> Alcotest.failf "expected 1 syn-ack, got %d replies" (List.length l)

let data_frame host ~src_port ~seq payload =
  Host.client_frame host ~src_ip:client_ip ~src_port ~dst_port:80 ~seq ~ack:0l
    ~flags:(Tcp.flag_ack lor Tcp.flag_psh)
    ~payload:(Bytes.of_string payload) ()

let test_handshake () =
  let _, host = make_host () in
  let _listener = Host.listen host ~port:80 in
  ignore (handshake host ~src_port:4000);
  checki "one connection" 1 (Pcb.connections (Host.table host))

let test_data_delivery_and_delayed_ack () =
  Tcp_input.reset_stats ();
  let _, host = make_host () in
  ignore (Host.listen host ~port:80);
  ignore (handshake host ~src_port:4000);
  let seg1 = data_frame host ~src_port:4000 ~seq:101l "hello " in
  let seg2 = data_frame host ~src_port:4000 ~seq:107l "world!" in
  let replies = run_frames host [ seg1; seg2 ] in
  (* 4.4BSD acks every second data segment: exactly one ACK for two. *)
  checki "one delayed ack for two segments" 1 (List.length replies);
  (match replies with
  | [ (h, _) ] ->
    check "cumulative" true (Int32.equal h.Tcp.ack (Int32.of_int (101 + 12)))
  | _ -> ());
  (* Data is in the socket buffer of the connection. *)
  (match
     Pcb.lookup (Host.table host) ~local_port:80 ~remote:(client_ip, 4000)
   with
  | Some pcb ->
    checks "payload" "hello world!" (Bytes.to_string (Sockbuf.read_all pcb.Pcb.sockbuf))
  | None -> Alcotest.fail "no pcb");
  let s = Tcp_input.stats () in
  checki "both took the fast path" 2 s.Tcp_input.fastpath_hits

let test_out_of_order_dup_ack () =
  let _, host = make_host () in
  ignore (Host.listen host ~port:80);
  ignore (handshake host ~src_port:4001);
  (* Skip ahead: segment at seq 200 when 101 is expected. *)
  let ooo = data_frame host ~src_port:4001 ~seq:200l "xxxx" in
  (match run_frames host [ ooo ] with
  | [ (h, _) ] -> check "dup-ack at rcv_nxt" true (Int32.equal h.Tcp.ack 101l)
  | l -> Alcotest.failf "expected dup-ack, got %d" (List.length l));
  (* Nothing delivered. *)
  match
    Pcb.lookup (Host.table host) ~local_port:80 ~remote:(client_ip, 4001)
  with
  | Some pcb -> checki "no data" 0 (Sockbuf.length pcb.Pcb.sockbuf)
  | None -> Alcotest.fail "no pcb"

let test_fin_moves_to_close_wait () =
  let _, host = make_host () in
  ignore (Host.listen host ~port:80);
  ignore (handshake host ~src_port:4002);
  let fin =
    Host.client_frame host ~src_ip:client_ip ~src_port:4002 ~dst_port:80
      ~seq:101l ~ack:0l ~flags:(Tcp.flag_fin lor Tcp.flag_ack) ()
  in
  (match run_frames host [ fin ] with
  | [ (h, _) ] -> check "fin acked" true (Int32.equal h.Tcp.ack 102l)
  | l -> Alcotest.failf "expected fin-ack, got %d" (List.length l));
  match
    Pcb.lookup (Host.table host) ~local_port:80 ~remote:(client_ip, 4002)
  with
  | Some pcb -> check "close-wait" true (pcb.Pcb.state = Pcb.Close_wait)
  | None -> Alcotest.fail "no pcb"

let test_rst_tears_down () =
  let _, host = make_host () in
  ignore (Host.listen host ~port:80);
  ignore (handshake host ~src_port:4003);
  checki "connected" 1 (Pcb.connections (Host.table host));
  let rst =
    Host.client_frame host ~src_ip:client_ip ~src_port:4003 ~dst_port:80
      ~seq:101l ~ack:0l ~flags:Tcp.flag_rst ()
  in
  checki "no reply to rst" 0 (List.length (run_frames host [ rst ]));
  checki "torn down" 0 (Pcb.connections (Host.table host))

let test_no_listener_rst () =
  let _, host = make_host () in
  let seg = data_frame host ~src_port:4004 ~seq:1l "to-nowhere" in
  match run_frames host [ seg ] with
  | [ (h, _) ] -> check "rst" true (Tcp.has_flag h Tcp.flag_rst)
  | l -> Alcotest.failf "expected RST, got %d replies" (List.length l)

let test_corrupt_checksum_dropped () =
  let _, host = make_host () in
  ignore (Host.listen host ~port:80);
  ignore (handshake host ~src_port:4005);
  let seg = data_frame host ~src_port:4005 ~seq:101l "valid-data" in
  (* Corrupt a payload byte after checksumming. *)
  let len = Ldlp_buf.Mbuf.length seg in
  Ldlp_buf.Mbuf.copy_into seg ~pos:(len - 1) (Bytes.of_string "X") ~src_off:0 ~len:1;
  checki "silently dropped" 0 (List.length (run_frames host [ seg ]));
  match
    Pcb.lookup (Host.table host) ~local_port:80 ~remote:(client_ip, 4005)
  with
  | Some pcb -> checki "nothing delivered" 0 (Sockbuf.length pcb.Pcb.sockbuf)
  | None -> Alcotest.fail "no pcb"

let test_window_respected () =
  let pool, host = make_host () in
  ignore pool;
  ignore (Pcb.listen (Host.table host) ~port:81 ~hiwat:8 ());
  let syn =
    Host.client_frame host ~src_ip:client_ip ~src_port:4006 ~dst_port:81
      ~seq:100l ~ack:0l ~flags:Tcp.flag_syn ()
  in
  (match run_frames host [ syn ] with
  | [ (h, _) ] ->
    checki "advertised window = hiwat" 8 h.Tcp.window;
    let ack =
      Host.client_frame host ~src_ip:client_ip ~src_port:4006 ~dst_port:81
        ~seq:101l ~ack:(Tcp.seq_add h.Tcp.seq 1) ~flags:Tcp.flag_ack ()
    in
    ignore (run_frames host [ ack ])
  | _ -> Alcotest.fail "no syn-ack");
  (* 12 bytes into an 8-byte window: slow path, partial accept. *)
  let seg =
    Host.client_frame host ~src_ip:client_ip ~src_port:4006 ~dst_port:81
      ~seq:101l ~ack:0l ~flags:Tcp.flag_ack
      ~payload:(Bytes.of_string "0123456789ab") ()
  in
  (match run_frames host [ seg ] with
  | [ (h, _) ] ->
    check "acks only accepted bytes" true (Int32.equal h.Tcp.ack 109l);
    checki "window closed" 0 h.Tcp.window
  | l -> Alcotest.failf "expected ack, got %d" (List.length l));
  match
    Pcb.lookup (Host.table host) ~local_port:81 ~remote:(client_ip, 4006)
  with
  | Some pcb ->
    checks "prefix kept" "01234567" (Bytes.to_string (Sockbuf.read_all pcb.Pcb.sockbuf))
  | None -> Alcotest.fail "no pcb"

let test_ldlp_equals_conventional () =
  let run discipline =
    let _, host = make_host () in
    ignore (Host.listen host ~port:80);
    ignore (handshake host ~src_port:5000);
    let chunks = List.init 16 (fun i -> Printf.sprintf "part%02d." i) in
    let _, frames =
      List.fold_left
        (fun (seq, acc) c ->
          ( Tcp.seq_add seq (String.length c),
            data_frame host ~src_port:5000 ~seq c :: acc ))
        (101l, []) chunks
    in
    let replies = run_frames ~discipline host (List.rev frames) in
    let data =
      match
        Pcb.lookup (Host.table host) ~local_port:80 ~remote:(client_ip, 5000)
      with
      | Some pcb -> Bytes.to_string (Sockbuf.read_all pcb.Pcb.sockbuf)
      | None -> ""
    in
    (data, List.length replies)
  in
  let d1, r1 = run Ldlp_core.Sched.Conventional in
  let d2, r2 = run (Ldlp_core.Sched.Ldlp Ldlp_core.Batch.paper_default) in
  checks "same delivery" d1 d2;
  checki "same ack count" r1 r2;
  checki "acks for every 2nd segment" 8 r1

let test_pcb_cache_effective_on_stream () =
  let _, host = make_host () in
  ignore (Host.listen host ~port:80);
  ignore (handshake host ~src_port:6000);
  let table_stats_before = Pcb.stats (Host.table host) in
  let frames =
    List.mapi
      (fun i c -> data_frame host ~src_port:6000 ~seq:(Tcp.seq_add 101l (8 * i)) c)
      (List.init 50 (fun i -> Printf.sprintf "chunk%03d" i))
  in
  ignore (run_frames host frames);
  let s = Pcb.stats (Host.table host) in
  (* A single-connection stream hits the one-entry cache every time. *)
  checki "all lookups cached"
    (s.Pcb.lookups - table_stats_before.Pcb.lookups)
    (s.Pcb.cache_hits - table_stats_before.Pcb.cache_hits)

let prop_stream_reassembly =
  QCheck.Test.make ~name:"any in-order segmentation delivers the exact stream"
    ~count:50
    QCheck.(list_of_size Gen.(1 -- 12) (QCheck.string_of_size Gen.(1 -- 64)))
    (fun chunks ->
      let _, host = make_host () in
      ignore (Host.listen host ~port:80);
      ignore (handshake host ~src_port:7000);
      let _, frames =
        List.fold_left
          (fun (seq, acc) c ->
            ( Tcp.seq_add seq (String.length c),
              data_frame host ~src_port:7000 ~seq c :: acc ))
          (101l, []) chunks
      in
      ignore (run_frames host (List.rev frames));
      match
        Pcb.lookup (Host.table host) ~local_port:80 ~remote:(client_ip, 7000)
      with
      | Some pcb ->
        Bytes.to_string (Sockbuf.read_all pcb.Pcb.sockbuf) = String.concat "" chunks
      | None -> false)

(* ---------- fragmented input (IP reassembly slow path) ---------- *)

let fragmented_frames host ~src_port ~seq payload =
  (* Build the TCP segment, then hand-fragment it across 3 IP fragments. *)
  let open Ldlp_packet in
  let segment =
    Ldlp_tcpmini.Tcp_output.build ~src:client_ip ~dst:(Host.ip host)
      ~src_port ~dst_port:80 ~seq ~ack:0l
      ~flags:(Tcp.flag_ack lor Tcp.flag_psh) ~window:8760
      ~payload:(Bytes.of_string payload) ()
  in
  let header =
    {
      Ipv4.ihl = 5;
      tos = 0;
      total_length = 0;
      ident = 0x7777;
      dont_fragment = false;
      more_fragments = false;
      fragment_offset = 0;
      ttl = 64;
      protocol = Ipv4.proto_tcp;
      src = client_ip;
      dst = Host.ip host;
    }
  in
  let pool = Ldlp_buf.Pool.create () in
  List.map
    (fun (h, frag_payload) ->
      let buf = Bytes.create (Ipv4.header_bytes + Bytes.length frag_payload) in
      Ipv4.build h buf 0;
      Bytes.blit frag_payload 0 buf Ipv4.header_bytes (Bytes.length frag_payload);
      let m = Ldlp_buf.Mbuf.of_bytes pool buf in
      Ethernet.encapsulate m
        {
          Ethernet.dst = Addr.Mac.of_string "02:00:00:00:00:01";
          src = Addr.Mac.of_string "02:00:00:00:00:aa";
          ethertype = Ethernet.ethertype_ipv4;
        })
    (Reasm.fragment ~mtu:64 ~header ~payload:segment)

let test_fragmented_segment_reassembled () =
  let pool = Ldlp_buf.Pool.create () in
  let host =
    Host.create ~pool
      ~mac:(Ldlp_packet.Addr.Mac.of_string "02:00:00:00:00:01")
      ~ip:(ipa "10.1.0.1") ~reassemble:true ()
  in
  ignore (Host.listen host ~port:80);
  ignore (handshake host ~src_port:8000);
  let payload = String.init 150 (fun i -> Char.chr (65 + (i mod 26))) in
  let frags = fragmented_frames host ~src_port:8000 ~seq:101l payload in
  check "actually fragmented" true (List.length frags > 1);
  ignore (run_frames host frags);
  match
    Pcb.lookup (Host.table host) ~local_port:80 ~remote:(client_ip, 8000)
  with
  | Some pcb ->
    checks "reassembled and delivered" payload
      (Bytes.to_string (Sockbuf.read_all pcb.Pcb.sockbuf))
  | None -> Alcotest.fail "no pcb"

let test_fragments_dropped_without_reassembly () =
  let pool = Ldlp_buf.Pool.create () in
  let host =
    Host.create ~pool
      ~mac:(Ldlp_packet.Addr.Mac.of_string "02:00:00:00:00:01")
      ~ip:(ipa "10.1.0.1") ()
  in
  ignore (Host.listen host ~port:80);
  ignore (handshake host ~src_port:8001);
  let payload = String.make 150 'z' in
  let frags = fragmented_frames host ~src_port:8001 ~seq:101l payload in
  check "actually fragmented" true (List.length frags > 1);
  ignore (run_frames host frags);
  let c = Host.counters host in
  check "fragments counted as bad" true (c.Host.bad_ip >= List.length frags);
  match
    Pcb.lookup (Host.table host) ~local_port:80 ~remote:(client_ip, 8001)
  with
  | Some pcb -> checki "nothing delivered" 0 (Sockbuf.length pcb.Pcb.sockbuf)
  | None -> Alcotest.fail "no pcb"

(* ---------- Rto ---------- *)

let checkf = Alcotest.(check (float 1e-9))

let test_rto_estimator () =
  checkf "initial" 1.0 Rto.initial_rto;
  checkf "min" 0.2 Rto.min_rto;
  checkf "max" 60.0 Rto.max_rto;
  let r = Rto.create () in
  check "no sample yet" true (Rto.srtt r = None);
  checkf "initial rto" Rto.initial_rto (Rto.rto r);
  Rto.observe r 0.1;
  (match Rto.srtt r with
  | Some s -> checkf "first sample initialises srtt" 0.1 s
  | None -> Alcotest.fail "no srtt after observe");
  (* rttvar starts at sample/2: rto = 0.1 + 4 * 0.05. *)
  checkf "rto after first sample" 0.3 (Rto.rto r);
  Rto.observe r 0.1;
  (* A steady rtt decays the variance term: rttvar = 0.05 * 3/4. *)
  checkf "steady sample decays rttvar" (0.1 +. (4.0 *. 0.0375)) (Rto.rto r);
  (* A sub-millisecond LAN rtt clamps at min_rto. *)
  let r2 = Rto.create () in
  Rto.observe r2 1e-4;
  checkf "min clamp" Rto.min_rto (Rto.rto r2)

let test_rto_backoff () =
  let r = Rto.create () in
  Rto.observe r 0.1;
  let base = Rto.rto r in
  Rto.backoff r;
  checkf "doubled" (2.0 *. base) (Rto.rto r);
  Rto.backoff r;
  checkf "quadrupled" (4.0 *. base) (Rto.rto r);
  checki "backoff count" 2 (Rto.backoff_count r);
  Rto.reset_backoff r;
  checkf "reset" base (Rto.rto r);
  for _ = 1 to 40 do
    Rto.backoff r
  done;
  checkf "max clamp" Rto.max_rto (Rto.rto r)

(* Arbitrary RTT histories (LAN-scale to WAN-scale samples): the
   estimator's invariants must hold on every one. *)
let rto_samples =
  QCheck.(list_of_size Gen.(0 -- 20) (float_bound_exclusive 2.0))

let prop_rto_backoff_doubles_to_clamp =
  QCheck.Test.make ~name:"rto: backoff doubles exactly until the RFC clamp"
    ~count:300
    QCheck.(pair rto_samples (int_bound 24))
    (fun (samples, backoffs) ->
      let r = Rto.create () in
      List.iter (Rto.observe r) samples;
      let ok = ref (Rto.rto r >= Rto.min_rto && Rto.rto r <= Rto.max_rto) in
      for _ = 1 to backoffs do
        let before = Rto.rto r in
        Rto.backoff r;
        (* Doubling a binary float is exact, so so is the clamp. *)
        ok := !ok && Rto.rto r = Float.min Rto.max_rto (2.0 *. before)
      done;
      !ok)

let prop_rto_never_decreases_under_backoff =
  QCheck.Test.make ~name:"rto: backoff never decreases the timeout" ~count:300
    QCheck.(pair rto_samples (int_bound 24))
    (fun (samples, backoffs) ->
      let r = Rto.create () in
      List.iter (Rto.observe r) samples;
      let ok = ref true in
      for _ = 1 to backoffs do
        let before = Rto.rto r in
        Rto.backoff r;
        ok := !ok && Rto.rto r >= before && Rto.rto r <= Rto.max_rto
      done;
      !ok)

let prop_rto_reset_restores_base =
  QCheck.Test.make
    ~name:"rto: reset after fresh samples restores the unbacked-off base"
    ~count:300
    QCheck.(pair (pair rto_samples rto_samples) (int_bound 24))
    (fun ((samples, fresh), backoffs) ->
      (* A connection that timed out [backoffs] times then saw fresh
         acks must quote the same timeout as one that never backed off
         but observed the same RTT history. *)
      let r = Rto.create () in
      List.iter (Rto.observe r) samples;
      for _ = 1 to backoffs do
        Rto.backoff r
      done;
      List.iter (Rto.observe r) fresh;
      Rto.reset_backoff r;
      let reference = Rto.create () in
      List.iter (Rto.observe reference) samples;
      List.iter (Rto.observe reference) fresh;
      Rto.backoff_count r = 0 && Rto.rto r = Rto.rto reference)

(* ---------- Pcb segment tracking and Karn's rule ---------- *)

let test_pcb_track_and_karn () =
  let t = Pcb.create_table () in
  let l = Pcb.listen t ~port:80 () in
  let pcb = Pcb.insert_connection t ~listener:l ~remote:(ipa "10.0.0.9", 1) in
  pcb.Pcb.state <- Pcb.Established;
  pcb.Pcb.snd_una <- 100l;
  pcb.Pcb.snd_nxt <- 100l;
  Pcb.track pcb ~now:1.0 ~seq:100l ~flags:Tcp.flag_ack (Bytes.make 10 'x');
  pcb.Pcb.snd_nxt <- 110l;
  checki "one unacked" 1 (Pcb.unacked pcb);
  (* A segment transmitted exactly once yields an RTT sample... *)
  (match Pcb.on_ack pcb ~now:1.5 110l with
  | Pcb.Ack_new (Some s) -> checkf "sample = ack - send time" 0.5 s
  | _ -> Alcotest.fail "expected Ack_new with a sample");
  (* ...a retransmitted one must not (Karn's rule). *)
  Pcb.track pcb ~now:2.0 ~seq:110l ~flags:Tcp.flag_ack (Bytes.make 5 'y');
  pcb.Pcb.snd_nxt <- 115l;
  (match Pcb.oldest_unacked pcb with
  | Some s ->
    s.Pcb.seg_rexmits <- 1;
    s.Pcb.seg_sent_at <- 2.6
  | None -> Alcotest.fail "no tracked segment");
  (match Pcb.on_ack pcb ~now:3.0 115l with
  | Pcb.Ack_new None -> ()
  | Pcb.Ack_new (Some _) -> Alcotest.fail "Karn's rule violated"
  | _ -> Alcotest.fail "expected Ack_new");
  checki "queue drained" 0 (Pcb.unacked pcb);
  (* An ack below snd_una is old; an ack at snd_una is a duplicate. *)
  check "old" true (Pcb.on_ack pcb ~now:3.0 100l = Pcb.Ack_old);
  check "duplicate" true (Pcb.on_ack pcb ~now:3.0 115l = Pcb.Ack_duplicate)

(* ---------- Loss recovery through the host timers ---------- *)

(* A manual clock + event list standing in for the discrete-event engine:
   [advance] runs due callbacks in (time, insertion) order. *)
module Fake_clock = struct
  type ev = { at : float; k : unit -> unit; id : int }

  type t = { mutable now : float; mutable events : ev list; mutable next : int }

  let create () = { now = 0.0; events = []; next = 0 }

  let schedule t d k =
    t.events <- { at = t.now +. d; k; id = t.next } :: t.events;
    t.next <- t.next + 1

  let rec advance t until =
    let due = List.filter (fun e -> e.at <= until) t.events in
    match List.sort (fun a b -> compare (a.at, a.id) (b.at, b.id)) due with
    | [] -> t.now <- until
    | e :: _ ->
      t.events <- List.filter (fun e' -> e'.id <> e.id) t.events;
      t.now <- e.at;
      e.k ();
      advance t until
end

let attach_fake_timers host =
  let clk = Fake_clock.create () in
  let txed = ref [] in
  Host.attach_timers host
    ~now:(fun () -> clk.Fake_clock.now)
    ~schedule:(Fake_clock.schedule clk)
    ~tx:(fun f -> txed := f :: !txed);
  (clk, txed)

let established_pcb host ~src_port =
  match Pcb.lookup (Host.table host) ~local_port:80 ~remote:(client_ip, src_port) with
  | Some pcb -> pcb
  | None -> Alcotest.fail "no pcb"

let test_retransmission_timeout_and_backoff () =
  let _, host = make_host () in
  ignore (Host.listen host ~port:80);
  let clk, txed = attach_fake_timers host in
  ignore (handshake host ~src_port:9000);
  let pcb = established_pcb host ~src_port:9000 in
  (* Let the (now pointless) handshake retransmission timer expire with
     an empty queue, then send data and lose the original transmission
     on the floor. *)
  Fake_clock.advance clk 1.0;
  checki "acked handshake retransmits nothing" 0
    (Host.counters host).Host.retransmits;
  (match Host.send host pcb (Bytes.of_string "needs-ack") with
  | Some _ -> ()
  | None -> Alcotest.fail "send refused");
  checki "tracked" 1 (Pcb.unacked pcb);
  (* The handshake rtt sample was ~0, so the timer sits at min_rto. *)
  Fake_clock.advance clk 1.3;
  checki "first timeout retransmitted" 1 (Host.counters host).Host.retransmits;
  checki "backoff applied" 1 (Rto.backoff_count pcb.Pcb.rto);
  (* Next deadline doubled: min_rto * 2 past the retransmission. *)
  Fake_clock.advance clk 1.5;
  checki "not yet" 1 (Host.counters host).Host.retransmits;
  Fake_clock.advance clk 1.7;
  checki "second timeout" 2 (Host.counters host).Host.retransmits;
  (* Both retransmissions carried the original segment. *)
  let frames = List.rev !txed in
  checki "two frames on the wire" 2 (List.length frames);
  List.iter
    (fun f ->
      match Host.parse_tx host (Host.wrap host f) with
      | Some (h, payload) ->
        check "data flags" true (Tcp.has_flag h Tcp.flag_psh);
        checks "payload intact" "needs-ack" (Bytes.to_string payload)
      | None -> Alcotest.fail "unparseable retransmission")
    frames;
  (* The ack finally lands: queue drains, backoff resets, timer goes quiet. *)
  let ack =
    Host.client_frame host ~src_ip:client_ip ~src_port:9000 ~dst_port:80
      ~seq:101l ~ack:pcb.Pcb.snd_nxt ~flags:Tcp.flag_ack ()
  in
  checki "no reply to the ack" 0 (List.length (run_frames host [ ack ]));
  checki "queue drained" 0 (Pcb.unacked pcb);
  checki "backoff reset" 0 (Rto.backoff_count pcb.Pcb.rto);
  txed := [];
  Fake_clock.advance clk 100.0;
  checki "silent once acked" 0 (List.length !txed);
  checki "no further retransmits" 2 (Host.counters host).Host.retransmits

let test_fast_retransmit_on_third_dupack () =
  let _, host = make_host () in
  ignore (Host.listen host ~port:80);
  let _clk, _txed = attach_fake_timers host in
  ignore (handshake host ~src_port:9001);
  let pcb = established_pcb host ~src_port:9001 in
  (match Host.send host pcb (Bytes.of_string "lost") with
  | Some _ -> ()
  | None -> Alcotest.fail "send refused");
  let dup () =
    Host.client_frame host ~src_ip:client_ip ~src_port:9001 ~dst_port:80
      ~seq:101l ~ack:pcb.Pcb.snd_una ~flags:Tcp.flag_ack ()
  in
  checki "1st dup-ack: silent" 0 (List.length (run_frames host [ dup () ]));
  checki "2nd dup-ack: silent" 0 (List.length (run_frames host [ dup () ]));
  checki "no retransmit below threshold" 0 (Host.counters host).Host.retransmits;
  (match run_frames host [ dup () ] with
  | [ (h, payload) ] ->
    check "3rd dup-ack fast-retransmits" true (Tcp.has_flag h Tcp.flag_psh);
    checks "the lost segment" "lost" (Bytes.to_string payload)
  | l -> Alcotest.failf "expected the fast retransmit, got %d" (List.length l));
  checki "counted" 1 (Host.counters host).Host.retransmits;
  (* A fourth duplicate does not retransmit again. *)
  checki "4th dup-ack: silent" 0 (List.length (run_frames host [ dup () ]));
  checki "still one" 1 (Host.counters host).Host.retransmits

let test_delayed_ack_timer () =
  let _, host = make_host () in
  ignore (Host.listen host ~port:80);
  let clk, txed = attach_fake_timers host in
  ignore (handshake host ~src_port:9002);
  check "delack below min_rto" true (Host.delack_timeout < Rto.min_rto);
  (* A single data segment: 4.4BSD waits for a second one... *)
  let seg = data_frame host ~src_port:9002 ~seq:101l "hi" in
  checki "no immediate ack" 0 (List.length (run_frames host [ seg ]));
  checki "nothing transmitted yet" 0 (List.length !txed);
  (* ...but the delayed-ACK timer bounds the wait. *)
  Fake_clock.advance clk (Host.delack_timeout +. 0.001);
  (match !txed with
  | [ f ] -> (
    match Host.parse_tx host (Host.wrap host f) with
    | Some (h, payload) ->
      check "pure ack" true
        (Tcp.has_flag h Tcp.flag_ack && not (Tcp.has_flag h Tcp.flag_psh));
      check "acks the segment" true (Int32.equal h.Tcp.ack 103l);
      checki "no payload" 0 (Bytes.length payload)
    | None -> Alcotest.fail "unparseable delayed ack")
  | l -> Alcotest.failf "expected 1 delayed ack, got %d" (List.length l));
  (* The timer is one-shot: nothing further fires. *)
  txed := [];
  Fake_clock.advance clk 10.0;
  checki "quiet afterwards" 0 (List.length !txed)

let test_pure_ack_never_answered () =
  (* Regression: a pure ACK (no data, no SYN/FIN) must never generate an
     ACK in reply — with both ends acking acks, two established hosts
     volley forever.  Found by the chaos soak's delayed-ACK timer. *)
  let _, host = make_host () in
  ignore (Host.listen host ~port:80);
  ignore (handshake host ~src_port:9003);
  let pcb = established_pcb host ~src_port:9003 in
  let pure_ack ~ack =
    Host.client_frame host ~src_ip:client_ip ~src_port:9003 ~dst_port:80
      ~seq:101l ~ack ~flags:Tcp.flag_ack ()
  in
  checki "window-update ack: silent" 0
    (List.length (run_frames host [ pure_ack ~ack:pcb.Pcb.snd_nxt ]));
  checki "duplicate ack: silent" 0
    (List.length (run_frames host [ pure_ack ~ack:pcb.Pcb.snd_una ]));
  (* A segment that occupies sequence space still gets its ACK. *)
  let seg = data_frame host ~src_port:9003 ~seq:101l "oo" in
  let seg2 = data_frame host ~src_port:9003 ~seq:103l "xx" in
  checki "data still acked" 1 (List.length (run_frames host [ seg; seg2 ]))

(* ---------- Parser hardening: mutation fuzz over the stack ---------- *)

let pool_in_use pool =
  let s = Ldlp_buf.Pool.stats pool in
  s.Ldlp_buf.Pool.small_in_use + s.Ldlp_buf.Pool.cluster_in_use

let test_truncation_and_garbage_counted () =
  let pool, host = make_host () in
  ignore (Host.listen host ~port:80);
  ignore (handshake host ~src_port:9200);
  let baseline = pool_in_use pool in
  (* Runt frame: too short for an Ethernet header. *)
  let runt = Ldlp_buf.Mbuf.of_bytes pool (Bytes.make 6 '\x42') in
  checki "runt: no reply" 0 (List.length (run_frames host [ runt ]));
  checki "runt counted non_ip" 1 (Host.counters host).Host.non_ip;
  (* Valid Ethernet, garbage IP. *)
  let seg = data_frame host ~src_port:9200 ~seq:101l "x" in
  let b = Ldlp_buf.Mbuf.to_bytes seg in
  Ldlp_buf.Mbuf.free pool seg;
  let garbage_ip = Bytes.sub b 0 16 in
  checki "garbage ip: no reply" 0
    (List.length (run_frames host [ Ldlp_buf.Mbuf.of_bytes pool garbage_ip ]));
  checki "counted bad_ip" 1 (Host.counters host).Host.bad_ip;
  (* Valid Ethernet + IP but a non-TCP protocol. *)
  let non_tcp = Bytes.copy b in
  Bytes.set non_tcp 23 '\x11' (* IPPROTO_UDP *);
  (* Fix the IP header checksum for the protocol change (byte 23 is in
     the 16-bit word at offset 22; adjust the checksum incrementally). *)
  let get16 buf off = (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1)) in
  let set16 buf off v =
    Bytes.set buf off (Char.chr ((v lsr 8) land 0xff));
    Bytes.set buf (off + 1) (Char.chr (v land 0xff))
  in
  let old_word = get16 b 22 and new_word = get16 non_tcp 22 in
  let cksum = get16 non_tcp 24 in
  let adjusted = (lnot cksum land 0xffff) - old_word + new_word in
  let adjusted = ((adjusted mod 0xffff) + 0xffff) mod 0xffff in
  set16 non_tcp 24 (lnot adjusted land 0xffff);
  checki "udp: no reply" 0
    (List.length (run_frames host [ Ldlp_buf.Mbuf.of_bytes pool non_tcp ]));
  checki "counted non_tcp" 1 (Host.counters host).Host.non_tcp;
  checki "every rejected mbuf freed" baseline (pool_in_use pool)

let prop_mutated_frames_never_raise =
  (* Any truncation or single byte-flip of a valid frame is absorbed by
     the stack: no exception escapes Host.layers and the mbuf is freed no
     matter which layer rejects it (or none — some flips leave the frame
     deliverable). *)
  QCheck.Test.make ~name:"mutated frames never raise and never leak" ~count:250
    QCheck.(
      triple
        (string_of_size Gen.(1 -- 40))
        (pair (0 -- 10_000) (0 -- 7))
        bool)
    (fun (payload, (site, bit), truncate) ->
      let pool, host = make_host () in
      ignore (Host.listen host ~port:80);
      ignore (handshake host ~src_port:9100);
      let baseline = pool_in_use pool in
      let frame = data_frame host ~src_port:9100 ~seq:101l payload in
      let b = Ldlp_buf.Mbuf.to_bytes frame in
      Ldlp_buf.Mbuf.free pool frame;
      let len = Bytes.length b in
      let mutated =
        if truncate then Bytes.sub b 0 (site mod len)
        else begin
          let pos = site mod len in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
          b
        end
      in
      let ok =
        try
          if Bytes.length mutated > 0 then
            ignore (run_frames host [ Ldlp_buf.Mbuf.of_bytes pool mutated ]);
          true
        with _ -> false
      in
      ok && pool_in_use pool = baseline)

let suite =
  [
    Alcotest.test_case "sockbuf basic" `Quick test_sockbuf_basic;
    Alcotest.test_case "sockbuf hiwat" `Quick test_sockbuf_hiwat;
    Alcotest.test_case "sockbuf wakeups" `Quick test_sockbuf_wakeups;
    QCheck_alcotest.to_alcotest prop_sockbuf_fifo;
    Alcotest.test_case "pcb listen/lookup" `Quick test_pcb_listen_and_lookup;
    Alcotest.test_case "pcb double listen" `Quick test_pcb_double_listen_rejected;
    Alcotest.test_case "pcb cache hits" `Quick test_pcb_cache_hits;
    Alcotest.test_case "pcb drop" `Quick test_pcb_drop;
    Alcotest.test_case "handshake" `Quick test_handshake;
    Alcotest.test_case "data + delayed ack" `Quick test_data_delivery_and_delayed_ack;
    Alcotest.test_case "out of order dup-ack" `Quick test_out_of_order_dup_ack;
    Alcotest.test_case "fin -> close-wait" `Quick test_fin_moves_to_close_wait;
    Alcotest.test_case "rst teardown" `Quick test_rst_tears_down;
    Alcotest.test_case "no listener -> rst" `Quick test_no_listener_rst;
    Alcotest.test_case "bad checksum dropped" `Quick test_corrupt_checksum_dropped;
    Alcotest.test_case "window respected" `Quick test_window_respected;
    Alcotest.test_case "ldlp = conventional" `Quick test_ldlp_equals_conventional;
    Alcotest.test_case "pcb cache on stream" `Quick test_pcb_cache_effective_on_stream;
    QCheck_alcotest.to_alcotest prop_stream_reassembly;
    Alcotest.test_case "fragmented segment reassembled" `Quick
      test_fragmented_segment_reassembled;
    Alcotest.test_case "fragments dropped without reassembly" `Quick
      test_fragments_dropped_without_reassembly;
    Alcotest.test_case "rto estimator" `Quick test_rto_estimator;
    Alcotest.test_case "rto backoff" `Quick test_rto_backoff;
    QCheck_alcotest.to_alcotest prop_rto_backoff_doubles_to_clamp;
    QCheck_alcotest.to_alcotest prop_rto_never_decreases_under_backoff;
    QCheck_alcotest.to_alcotest prop_rto_reset_restores_base;
    Alcotest.test_case "pcb tracking + Karn's rule" `Quick
      test_pcb_track_and_karn;
    Alcotest.test_case "retransmission timeout + backoff" `Quick
      test_retransmission_timeout_and_backoff;
    Alcotest.test_case "fast retransmit on 3rd dup-ack" `Quick
      test_fast_retransmit_on_third_dupack;
    Alcotest.test_case "delayed-ack timer" `Quick test_delayed_ack_timer;
    Alcotest.test_case "pure ack never answered" `Quick
      test_pure_ack_never_answered;
    Alcotest.test_case "truncation/garbage counted and freed" `Quick
      test_truncation_and_garbage_counted;
    QCheck_alcotest.to_alcotest prop_mutated_frames_never_raise;
  ]
