(* Tests for traffic sources: Poisson, ON/OFF self-similar aggregate,
   size distributions, trace files, Hurst estimation. *)

open Ldlp_traffic

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

let rng seed = Ldlp_sim.Rng.create ~seed

(* ---------- Source combinators ---------- *)

let pkts l = List.map (fun (at, size) -> { Source.at; size }) l

let test_of_list_pull_peek () =
  let s = Source.of_list (pkts [ (1.0, 10); (2.0, 20) ]) in
  (match Source.peek s with
  | Some p -> Alcotest.(check (float 0.0)) "peek at" 1.0 p.Source.at
  | None -> Alcotest.fail "peek");
  (match Source.pull s with
  | Some p -> checki "pull size" 10 p.Source.size
  | None -> Alcotest.fail "pull");
  (match Source.pull s with
  | Some p -> checki "second" 20 p.Source.size
  | None -> Alcotest.fail "pull 2");
  check "exhausted" true (Source.pull s = None)

let test_of_list_unsorted_raises () =
  check "unsorted raises" true
    (try
       ignore (Source.of_list (pkts [ (2.0, 1); (1.0, 1) ]));
       false
     with Invalid_argument _ -> true)

let test_limit_time () =
  let s = Source.of_list (pkts [ (0.5, 1); (1.5, 2); (2.5, 3) ]) in
  let l = Source.to_list (Source.limit_time s 2.0) in
  checki "two before horizon" 2 (List.length l)

let test_limit_count () =
  let s = Source.of_list (pkts [ (0.5, 1); (1.5, 2); (2.5, 3) ]) in
  checki "count limit" 2 (List.length (Source.to_list (Source.limit_count s 2)))

let test_map_size () =
  let s = Source.of_list (pkts [ (0.5, 100) ]) in
  match Source.to_list (Source.map_size s (fun n -> n * 2)) with
  | [ p ] -> checki "doubled" 200 p.Source.size
  | _ -> Alcotest.fail "map_size"

let test_scale_time () =
  let s = Source.of_list (pkts [ (1.0, 1) ]) in
  match Source.to_list (Source.scale_time s 2.0) with
  | [ p ] -> Alcotest.(check (float 1e-12)) "scaled" 2.0 p.Source.at
  | _ -> Alcotest.fail "scale_time"

let prop_merge_sorted =
  QCheck.Test.make ~name:"merge of sorted streams is sorted" ~count:200
    QCheck.(
      pair
        (list (float_bound_inclusive 100.0))
        (list (float_bound_inclusive 100.0)))
    (fun (xs, ys) ->
      let mk l =
        Source.of_list
          (List.map (fun at -> { Source.at; size = 1 }) (List.sort compare l))
      in
      let merged = Source.to_list (Source.merge (mk xs) (mk ys)) in
      let times = List.map (fun p -> p.Source.at) merged in
      List.length merged = List.length xs + List.length ys
      && times = List.sort compare times)

(* ---------- Poisson ---------- *)

let test_poisson_rate () =
  let s = Poisson.source ~rng:(rng 1) ~rate:1000.0 () in
  let l = Source.to_list (Source.limit_time s 10.0) in
  let n = List.length l in
  check "rate within 5%" true (n > 9500 && n < 10500);
  check "sizes are 552" true (List.for_all (fun p -> p.Source.size = 552) l)

let test_poisson_monotone () =
  let s = Poisson.source ~rng:(rng 2) ~rate:100.0 () in
  let l = Source.to_list (Source.limit_count s 1000) in
  let rec mono = function
    | a :: (b :: _ as rest) -> a.Source.at <= b.Source.at && mono rest
    | _ -> true
  in
  check "monotone times" true (mono l)

let test_poisson_custom_size () =
  let s = Poisson.source ~rng:(rng 3) ~rate:100.0 ~size:64 () in
  match Source.to_list (Source.limit_count s 1) with
  | [ p ] -> checki "custom size" 64 p.Source.size
  | _ -> Alcotest.fail "poisson"

(* ---------- Sizes ---------- *)

let test_sizes_validate () =
  Sizes.validate Sizes.ethernet_mix;
  Sizes.validate (Sizes.constant 552);
  check "bad dist raises" true
    (try
       Sizes.validate [ (0.5, 100) ];
       false
     with Invalid_argument _ -> true)

let test_sizes_sample_support () =
  let r = rng 4 in
  let support = List.map snd Sizes.ethernet_mix in
  for _ = 1 to 1000 do
    check "in support" true (List.mem (Sizes.sample r Sizes.ethernet_mix) support)
  done

let test_sizes_mean () =
  Alcotest.(check (float 1e-9)) "constant mean" 552.0 (Sizes.mean (Sizes.constant 552));
  let m = Sizes.mean Sizes.ethernet_mix in
  check "ethernet mix mean plausible" true (m > 200.0 && m < 600.0)

(* ---------- ON/OFF ---------- *)

let test_onoff_mean_rate () =
  (* The source is a pure function of the seed, so this sample path is a
     constant: seed 5 over 50 s produces exactly 78223 packets (1564/s
     against a configured mean of 1391/s — within the heavy-tailed
     variance of one path).  Pinning the exact count both deflakes the
     old +/-50% tolerance and catches any unintended change to the
     generator's draw sequence. *)
  let cfg = Onoff.default in
  let s = Onoff.source ~rng:(rng 5) ~config:cfg () in
  let l = Source.to_list (Source.limit_time s 50.0) in
  Alcotest.(check int) "seed-5 sample path is byte-stable" 78223 (List.length l)

let test_onoff_monotone () =
  let s = Onoff.source ~rng:(rng 6) () in
  let l = Source.to_list (Source.limit_count s 5000) in
  let rec mono = function
    | a :: (b :: _ as rest) -> a.Source.at <= b.Source.at && mono rest
    | _ -> true
  in
  check "monotone" true (mono l)

let test_onoff_validation () =
  check "alpha <= 1 rejected" true
    (try
       ignore
         (Onoff.source ~rng:(rng 7)
            ~config:{ Onoff.default with Onoff.alpha_on = 0.9 }
            ());
       false
     with Invalid_argument _ -> true)

(* ---------- Hurst ---------- *)

let test_hurst_distinguishes_selfsimilar () =
  let horizon = 200.0 in
  let poisson =
    Source.to_list
      (Source.limit_time (Poisson.source ~rng:(rng 8) ~rate:500.0 ()) horizon)
  in
  let onoff =
    Source.to_list
      (Source.limit_time (Onoff.source ~rng:(rng 9) ()) horizon)
  in
  let hp = Hurst.of_packets ~bin:0.05 ~horizon poisson in
  let ho = Hurst.of_packets ~bin:0.05 ~horizon onoff in
  check (Printf.sprintf "poisson H=%.2f < onoff H=%.2f" hp ho) true (hp < ho);
  check "poisson near 0.5" true (hp < 0.65);
  check "onoff clearly self-similar" true (ho > 0.65)

let test_hurst_counts () =
  let c =
    Hurst.counts ~bin:1.0 ~horizon:3.0
      (pkts [ (0.5, 1); (0.7, 1); (1.5, 1); (2.9, 1) ])
  in
  Alcotest.(check (array (float 0.0))) "bins" [| 2.0; 1.0; 1.0 |] c

(* ---------- Tracefile ---------- *)

let test_tracefile_roundtrip () =
  let packets = pkts [ (0.001, 64); (0.5, 1518); (1.25, 552) ] in
  let path = Filename.temp_file "ldlp" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tracefile.save path packets;
      let loaded = Tracefile.load path in
      checki "count" 3 (List.length loaded);
      List.iter2
        (fun a b ->
          check "time" true (Float.abs (a.Source.at -. b.Source.at) < 1e-9);
          checki "size" a.Source.size b.Source.size)
        packets loaded)

let test_tracefile_bad_line () =
  let path = Filename.temp_file "ldlp" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "0.5 not-a-number\n";
      close_out oc;
      check "bad line raises" true
        (try
           ignore (Tracefile.load path);
           false
         with Failure _ -> true))

let suite =
  [
    Alcotest.test_case "of_list pull/peek" `Quick test_of_list_pull_peek;
    Alcotest.test_case "of_list unsorted" `Quick test_of_list_unsorted_raises;
    Alcotest.test_case "limit_time" `Quick test_limit_time;
    Alcotest.test_case "limit_count" `Quick test_limit_count;
    Alcotest.test_case "map_size" `Quick test_map_size;
    Alcotest.test_case "scale_time" `Quick test_scale_time;
    QCheck_alcotest.to_alcotest prop_merge_sorted;
    Alcotest.test_case "poisson rate" `Quick test_poisson_rate;
    Alcotest.test_case "poisson monotone" `Quick test_poisson_monotone;
    Alcotest.test_case "poisson custom size" `Quick test_poisson_custom_size;
    Alcotest.test_case "sizes validate" `Quick test_sizes_validate;
    Alcotest.test_case "sizes support" `Quick test_sizes_sample_support;
    Alcotest.test_case "sizes mean" `Quick test_sizes_mean;
    Alcotest.test_case "onoff mean rate" `Slow test_onoff_mean_rate;
    Alcotest.test_case "onoff monotone" `Quick test_onoff_monotone;
    Alcotest.test_case "onoff validation" `Quick test_onoff_validation;
    Alcotest.test_case "hurst self-similarity" `Slow test_hurst_distinguishes_selfsimilar;
    Alcotest.test_case "hurst counts" `Quick test_hurst_counts;
    Alcotest.test_case "tracefile roundtrip" `Quick test_tracefile_roundtrip;
    Alcotest.test_case "tracefile bad line" `Quick test_tracefile_bad_line;
  ]
